#include "src/flatten/tiling.h"

#include <functional>
#include <set>

#include "src/ir/traverse.h"
#include "src/support/error.h"

namespace incflat {

namespace {

/// Does `e` contain (outside of nested lambdas of further seg-ops) a
/// redomap whose array operands are all plain variables?
bool body_has_tileable_redomap(const ExprP& e) {
  if (!e) return false;
  if (auto* rm = e->as<RedomapE>()) {
    for (const auto& a : rm->arrays) {
      // Whole-array variables are stageable; iota operands are computed
      // (gather-style redomaps whose real reads are indexes in the body).
      if (!a->is<VarE>() && !a->is<IotaE>()) return false;
    }
    return true;
  }
  if (auto* l = e->as<LetE>()) {
    return body_has_tileable_redomap(l->rhs) ||
           body_has_tileable_redomap(l->body);
  }
  if (auto* lp = e->as<LoopE>()) return body_has_tileable_redomap(lp->body);
  if (auto* i = e->as<IfE>()) {
    return body_has_tileable_redomap(i->then_e) ||
           body_has_tileable_redomap(i->else_e);
  }
  if (auto* m = e->as<MapE>()) return body_has_tileable_redomap(m->f.body);
  if (auto* t = e->as<TupleE>()) {
    for (const auto& x : t->elems) {
      if (body_has_tileable_redomap(x)) return true;
    }
    return false;
  }
  return false;
}

bool segmap_is_tileable(const SegOpE& so) {
  if (so.op != SegOpE::Op::Map || so.level < 1) return false;
  if (so.space.size() < 2) return false;
  if (count_segops(so.body) > 0) return false;  // intra-group kernels: no
  return body_has_tileable_redomap(so.body);
}

ExprP mark(const ExprP& e);

Lambda mark_lambda(const Lambda& l) { return Lambda{l.params, mark(l.body)}; }

std::vector<ExprP> mark_list(const std::vector<ExprP>& es) {
  std::vector<ExprP> out;
  out.reserve(es.size());
  for (const auto& x : es) out.push_back(mark(x));
  return out;
}

ExprP mark(const ExprP& e) {
  if (!e) return e;
  if (auto* so = e->as<SegOpE>()) {
    SegOpE out = *so;
    out.body = mark(so->body);
    out.block_tiled = segmap_is_tileable(*so);
    return mk(std::move(out), e->types);
  }
  if (auto* l = e->as<LetE>()) {
    return mk(LetE{l->vars, mark(l->rhs), mark(l->body)}, e->types);
  }
  if (auto* lp = e->as<LoopE>()) {
    return mk(LoopE{lp->params, mark_list(lp->inits), lp->ivar, lp->count,
                    mark(lp->body)},
              e->types);
  }
  if (auto* i = e->as<IfE>()) {
    return mk(IfE{i->cond, mark(i->then_e), mark(i->else_e)}, e->types);
  }
  if (auto* t = e->as<TupleE>()) {
    return mk(TupleE{mark_list(t->elems)}, e->types);
  }
  if (auto* m = e->as<MapE>()) {
    return mk(MapE{mark_lambda(m->f), m->arrays}, e->types);
  }
  return e;  // other nodes cannot contain seg-ops in flattened programs
}

}  // namespace

Program apply_tiling(Program p) {
  p.body = mark(p.body);
  return p;
}

int64_t count_tiled(const ExprP& e) {
  int64_t n = 0;
  std::function<void(const ExprP&)> walk = [&](const ExprP& x) {
    if (!x) return;
    if (auto* so = x->as<SegOpE>()) {
      if (so->block_tiled) ++n;
      walk(so->body);
      return;
    }
    if (auto* l = x->as<LetE>()) {
      walk(l->rhs);
      walk(l->body);
    } else if (auto* lp = x->as<LoopE>()) {
      walk(lp->body);
    } else if (auto* i = x->as<IfE>()) {
      walk(i->then_e);
      walk(i->else_e);
    } else if (auto* t = x->as<TupleE>()) {
      for (const auto& y : t->elems) walk(y);
    }
  };
  walk(e);
  return n;
}

}  // namespace incflat
