// Dead seg-space binding pruning.
//
// G6/G7 chain every distributed value through the whole map-nest context,
// so manifested seg-ops otherwise carry dead parameters that a real code
// generator would never stage.  This pass drops seg-space bindings whose
// parameters are used neither by the seg-op body (or combine operator) nor
// as the source array of a deeper binding.
#pragma once

#include "src/ir/expr.h"

namespace incflat {

/// Prune dead seg-space bindings in every seg-op reachable from `e`.
/// Preserves existing type annotations; does not re-typecheck.
ExprP prune_seg_spaces(const ExprP& e);

}  // namespace incflat
