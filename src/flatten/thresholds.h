// Threshold parameters and the branching tree of guarded code versions.
//
// Incremental flattening guards each generated code version with a predicate
// `Par(...) >= t` over a fresh threshold parameter t (rules G3/G9).  The
// registry records, for every threshold, the symbolic size it is compared
// against and the guard *path* (ancestor thresholds and branch directions)
// under which the comparison is reachable.  This is the paper's Fig. 5
// branching tree, and it powers the autotuner's deduplication of equivalent
// parameter assignments (Sec. 4.2).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/size.h"

namespace incflat {

/// One step on a guard path: (threshold name, branch taken).  `true` means
/// the comparison succeeded (the more-parallel-outer version was selected).
using PathStep = std::pair<std::string, bool>;
using GuardPath = std::vector<PathStep>;

struct ThresholdInfo {
  std::string name;
  SizeExpr par;      // the symbolic size compared against this threshold
  SizeExpr fit;      // workgroup-size feasibility bound; empty alts = none
  GuardPath path;    // guards that must evaluate as recorded to reach this one
};

/// Registry of all thresholds created while flattening one program.
class ThresholdRegistry {
 public:
  /// Create a fresh threshold of the given kind ("suff_outer_par" /
  /// "suff_intra_par") compared against `par`, reachable under `path`.
  /// `fit` carries the guarded version's workgroup-size requirement (empty
  /// for versions without intra-group parallelism).
  std::string fresh(const std::string& kind, const SizeExpr& par,
                    const SizeExpr& fit, const GuardPath& path);

  const std::vector<ThresholdInfo>& all() const { return infos_; }
  const ThresholdInfo& info(const std::string& name) const;
  bool empty() const { return infos_.empty(); }
  size_t size() const { return infos_.size(); }

  /// Roll back to `mark` thresholds (used when a guarded group degenerates
  /// to a single version and its guards are discarded).
  void truncate(size_t mark);

  /// Keep only the thresholds in `keep` (those still mentioned by guards in
  /// the IR after simplify-guards folded some away), preserving relative
  /// order.  Guard-path steps referencing dropped thresholds are erased:
  /// a folded guard takes a constant branch, so it no longer constrains
  /// reachability.  Returns the number of thresholds removed.
  size_t retain(const std::set<std::string>& keep);

  /// For a concrete dataset and threshold assignment, the *path signature*:
  /// the branch each reachable guard takes.  Two assignments with equal
  /// signatures on a dataset select exactly the same code versions, hence
  /// have identical runtimes — the tuner's dedup key.
  std::vector<bool> path_signature(
      const SizeEnv& sizes,
      const std::map<std::string, int64_t>& assignment,
      int64_t default_value, int64_t max_group_size) const;

  /// Render the branching tree (indented text), Fig. 5 style.
  std::string tree_str() const;

 private:
  std::vector<ThresholdInfo> infos_;
  std::map<std::string, size_t> index_;
  int counter_ = 0;
};

}  // namespace incflat
