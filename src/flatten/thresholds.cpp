#include "src/flatten/thresholds.h"

#include <sstream>

#include "src/support/error.h"

namespace incflat {

std::string ThresholdRegistry::fresh(const std::string& kind,
                                     const SizeExpr& par, const SizeExpr& fit,
                                     const GuardPath& path) {
  std::string name = kind + "_" + std::to_string(counter_++);
  index_[name] = infos_.size();
  infos_.push_back(ThresholdInfo{name, par, fit, path});
  return name;
}

void ThresholdRegistry::truncate(size_t mark) {
  INCFLAT_CHECK(mark <= infos_.size(), "threshold truncate beyond size");
  while (infos_.size() > mark) {
    index_.erase(infos_.back().name);
    infos_.pop_back();
  }
}

size_t ThresholdRegistry::retain(const std::set<std::string>& keep) {
  std::vector<ThresholdInfo> kept;
  kept.reserve(infos_.size());
  for (auto& ti : infos_) {
    if (!keep.count(ti.name)) continue;
    GuardPath path;
    for (const auto& step : ti.path) {
      if (keep.count(step.first)) path.push_back(step);
    }
    ti.path = std::move(path);
    kept.push_back(std::move(ti));
  }
  const size_t removed = infos_.size() - kept.size();
  infos_ = std::move(kept);
  index_.clear();
  for (size_t i = 0; i < infos_.size(); ++i) index_[infos_[i].name] = i;
  return removed;
}

const ThresholdInfo& ThresholdRegistry::info(const std::string& name) const {
  auto it = index_.find(name);
  INCFLAT_CHECK(it != index_.end(), "unknown threshold " + name);
  return infos_[it->second];
}

std::vector<bool> ThresholdRegistry::path_signature(
    const SizeEnv& sizes, const std::map<std::string, int64_t>& assignment,
    int64_t default_value, int64_t max_group_size) const {
  // A guard is *reachable* if every ancestor on its path takes the recorded
  // branch under this assignment.  Unreachable guards contribute a fixed
  // `false` so signatures stay comparable position-by-position.
  std::map<std::string, bool> taken;
  std::vector<bool> sig;
  sig.reserve(infos_.size());
  for (const auto& ti : infos_) {
    bool reachable = true;
    for (const auto& [anc, dir] : ti.path) {
      auto it = taken.find(anc);
      if (it == taken.end() || it->second != dir) {
        reachable = false;
        break;
      }
    }
    bool branch = false;
    if (reachable) {
      auto it = assignment.find(ti.name);
      const int64_t tv = it == assignment.end() ? default_value : it->second;
      branch = ti.par.eval(sizes) >= tv &&
               (ti.fit.alts.empty() || ti.fit.eval(sizes) <= max_group_size);
    }
    taken[ti.name] = branch;
    sig.push_back(reachable && branch);
  }
  return sig;
}

std::string ThresholdRegistry::tree_str() const {
  std::ostringstream os;
  for (const auto& ti : infos_) {
    os << std::string(2 * ti.path.size(), ' ') << ti.name << ": "
       << ti.par.str() << " >= ?";
    if (!ti.path.empty()) {
      os << "   [under";
      for (const auto& [anc, dir] : ti.path) {
        os << " " << anc << "=" << (dir ? "T" : "F");
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace incflat
