// Flattening: source-language nested parallelism -> target-language seg-ops.
//
// Three modes, matching the paper's evaluated compilers:
//
//  * Moderate (MF, prior work [32], Sec. 3.1): a single code version chosen
//    by a static heuristic — maps are distributed, perfectly nested
//    reduce/scan are parallelised, redomaps are sequentialised (enabling
//    tiling), loops are interchanged outwards (G7), all at hardware level 1.
//
//  * Incremental (IF, Sec. 3.2 — the paper's contribution): at every map
//    with inner parallelism, rule G3 emits three guarded versions (only
//    outer parallelism / outer + intra-group / continue flattening); rule G9
//    versions redomaps; rule G8 pushes map nests into branches.  Guards
//    compare symbolic degrees of parallelism with fresh threshold
//    parameters, later autotuned.
//
//  * Full: the moderate heuristic forced to always exploit every level of
//    parallelism (the approximation of NESL-style full flattening used for
//    the Sec. 5.3 comparison).
//
// The GPU has two hardware levels (Sec. 4.1): grid level 1 and workgroup
// level 0.  Flattening starts at level 1 with an empty map-nest context.
#pragma once

#include <string>

#include "src/flatten/thresholds.h"
#include "src/ir/expr.h"

namespace incflat {

enum class FlattenMode { Moderate, Incremental, Full };

const char* mode_name(FlattenMode m);

/// Inverse of mode_name; throws CompilerError (listing the valid modes) on
/// an unknown name.
FlattenMode mode_from_name(const std::string& name);

struct FlattenResult {
  Program program;               // target program, type-annotated
  ThresholdRegistry thresholds;  // empty for Moderate/Full
};

struct FlattenOptions {
  /// Run producer-consumer fusion before flattening (Sec. 4).  The paper
  /// disables this for moderate flattening on Backprop (Sec. 5.3).
  bool fuse = true;
};

/// Flatten a type-annotated source program.  The result is annotated,
/// satisfies the target level discipline, and — for any threshold
/// assignment — computes the same values as the source (property-tested).
FlattenResult flatten(const Program& src, FlattenMode mode,
                      const FlattenOptions& opts = {});

}  // namespace incflat
