// Producer-consumer fusion (paper Sec. 4: "aggressive fusion [30, 31] is
// performed prior to flattening").
//
// The subset implemented here is the one the evaluation depends on:
// map-into-reduce/scan fusion, i.e.
//
//   let ys = map f xs in reduce ⊕ v ys   ==>   redomap ⊕ f v xs
//   let ys = map f xs in scan   ⊕ v ys   ==>   scanomap ⊕ f v xs
//
// (also through an interposed let, when ys is not referenced afterwards).
// Sec. 5.3 notes that for Backprop this fusion was *explicitly prevented*
// for moderate flattening — the harness reproduces that with
// FlattenOptions::fuse = false.
#pragma once

#include "src/ir/expr.h"

namespace incflat {

/// Fuse map-into-reduce/scan chains; input must be annotated, output is
/// re-annotated.
Program fuse_program(Program p);

/// Expression-level entry point (exposed for tests); output is unannotated.
ExprP fuse_expr(const ExprP& e);

/// Number of redomap/scanomap nodes (fusion effectiveness metric).
int64_t count_fused(const ExprP& e);

}  // namespace incflat
