// A-normalisation with respect to parallelism (paper Sec. 2: "We assume
// A-normal form").
//
// The flattening rules dispatch on the *head* of an expression, so a SOAC
// buried inside a scalar operator (e.g. `1/(1+exp(-(redomap ...)))` in
// Backprop's neuron function) would otherwise be invisible to distribution.
// This pass hoists every SOAC occurring in a scalar operand position —
// binop/unop operands, if conditions, index subscripts, loop counts and
// initialisers, replicate elements, SOAC neutral elements — into a fresh
// let binding directly above the consuming expression.
#pragma once

#include "src/ir/expr.h"

namespace incflat {

/// Normalise a type-annotated program; the result is re-annotated.
Program normalize_program(Program p);

/// Expression-level entry point (exposed for tests).
ExprP normalize_expr(const ExprP& e);

}  // namespace incflat
