#include "src/flatten/prune.h"

#include <set>
#include <string>
#include <vector>

#include "src/ir/traverse.h"

namespace incflat {

namespace {

/// Drop seg-space bindings whose parameters are used neither by the body
/// (or combine operator) nor as the source array of a deeper binding.
/// `so.body` must already be pruned: the used-set is computed from it, so
/// pruning bottom-up makes a binding kept only for a nested seg-op's dead
/// binding disappear in the same pass (and the pass idempotent).
SegOpE prune_segop(const SegOpE& so) {
  std::set<std::string> used = free_vars(so.body);
  if (so.op != SegOpE::Op::Map) {
    for (const auto& fv : free_vars(so.combine.body)) used.insert(fv);
    for (const auto& p : so.combine.params) used.erase(p.name);
  }
  SegOpE out = so;
  for (size_t k = out.space.size(); k > 0; --k) {
    SegBind& b = out.space[k - 1];
    std::vector<std::string> params, arrays;
    for (size_t i = 0; i < b.params.size(); ++i) {
      if (used.count(b.params[i])) {
        params.push_back(b.params[i]);
        arrays.push_back(b.arrays[i]);
        used.insert(b.arrays[i]);
      }
    }
    b.params = std::move(params);
    b.arrays = std::move(arrays);
  }
  return out;
}

std::vector<ExprP> prune_list(const std::vector<ExprP>& es) {
  std::vector<ExprP> out;
  out.reserve(es.size());
  for (const auto& x : es) out.push_back(prune_seg_spaces(x));
  return out;
}

}  // namespace

ExprP prune_seg_spaces(const ExprP& e) {
  if (!e) return e;
  if (auto* so = e->as<SegOpE>()) {
    SegOpE inner = *so;
    inner.body = prune_seg_spaces(so->body);
    return mk(prune_segop(inner), e->types);
  }
  if (auto* l = e->as<LetE>()) {
    return mk(
        LetE{l->vars, prune_seg_spaces(l->rhs), prune_seg_spaces(l->body)},
        e->types);
  }
  if (auto* lp = e->as<LoopE>()) {
    return mk(LoopE{lp->params, prune_list(lp->inits), lp->ivar, lp->count,
                    prune_seg_spaces(lp->body)},
              e->types);
  }
  if (auto* i = e->as<IfE>()) {
    return mk(
        IfE{i->cond, prune_seg_spaces(i->then_e), prune_seg_spaces(i->else_e)},
        e->types);
  }
  if (auto* t = e->as<TupleE>()) {
    return mk(TupleE{prune_list(t->elems)}, e->types);
  }
  return e;
}

}  // namespace incflat
