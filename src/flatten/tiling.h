// Block-tiling analysis (Sec. 2.2).
//
// Sequentialising an inner redomap inside a multi-dimensional segmap is what
// *enables* block tiling in scratchpad memory: each workgroup stages tiles
// of the traversed arrays so every global element is read once per tile
// instead of once per thread.  This pass marks the segmaps where the Futhark
// compiler's tiling applies; the GPU cost model then divides the redomap's
// global traffic by the device's tile size.
//
// The detection mirrors the moderate-flattening-era tiler: a level>=1 segmap
// with at least two space dimensions, no intra-group parallelism, whose body
// contains a sequential redomap over whole-array variables — each of which
// is then invariant to at least one of the two innermost space dimensions
// (bound at another level, or free in the kernel).
#pragma once

#include "src/ir/expr.h"

namespace incflat {

/// Return a copy of `p` with `block_tiled` set on every qualifying segmap.
Program apply_tiling(Program p);

/// Number of block-tiled kernels in the program (for tests/reports).
int64_t count_tiled(const ExprP& e);

}  // namespace incflat
