// The mode transform: flattening rules G0–G9 (paper Fig. 3/4).
//
// This is the core rewrite stage of the pipeline.  It consumes a fused,
// A-normalised, type-annotated source program and produces the target-IR
// body (seg-ops with map-nest contexts; guarded multi-versioned code under
// incremental flattening) plus the registry of threshold parameters created
// for the guards.  It does not prune dead seg-space bindings, re-annotate,
// or run tiling detection — those are separate downstream passes (see
// src/pass/).
#pragma once

#include "src/flatten/flatten.h"
#include "src/flatten/thresholds.h"
#include "src/ir/expr.h"

namespace incflat {

struct TransformResult {
  ExprP body;                    // target body, not yet re-annotated
  ThresholdRegistry thresholds;  // empty for Moderate/Full
};

/// Apply the mode's flattening rules to `anf` (which must be normalised and
/// type-annotated), starting at the GPU grid level (l = 1) with an empty
/// map-nest context.
TransformResult transform_program(const Program& anf, FlattenMode mode);

}  // namespace incflat
