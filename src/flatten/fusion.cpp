#include "src/flatten/fusion.h"

#include <algorithm>
#include <functional>

#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/support/error.h"

namespace incflat {

namespace {

/// Do `arrays` reference exactly the variables `vars`, in order?
bool arrays_are_vars(const std::vector<ExprP>& arrays,
                     const std::vector<std::string>& vars) {
  if (arrays.size() != vars.size()) return false;
  for (size_t i = 0; i < arrays.size(); ++i) {
    auto* v = arrays[i]->as<VarE>();
    if (!v || v->name != vars[i]) return false;
  }
  return true;
}

bool any_var_free(const std::vector<std::string>& vars, const ExprP& e) {
  const auto fv = free_vars(e);
  return std::any_of(vars.begin(), vars.end(),
                     [&](const std::string& v) { return fv.count(v) > 0; });
}

ExprP fuse(const ExprP& e);

Lambda fuse_lambda(const Lambda& l) { return Lambda{l.params, fuse(l.body)}; }

std::vector<ExprP> fuse_list(const std::vector<ExprP>& es) {
  std::vector<ExprP> out;
  out.reserve(es.size());
  for (const auto& x : es) out.push_back(fuse(x));
  return out;
}

/// Try to fuse `let vars = map f xs in consumer`; returns null on no match.
ExprP try_fuse_let(const std::vector<std::string>& vars, const MapE& producer,
                   const ExprP& consumer) {
  // Direct consumer: reduce/scan over exactly the produced arrays.
  if (auto* r = consumer->as<ReduceE>()) {
    if (arrays_are_vars(r->arrays, vars)) {
      return mk(RedomapE{r->op, producer.f, r->neutral, producer.arrays});
    }
  }
  if (auto* s = consumer->as<ScanE>()) {
    if (arrays_are_vars(s->arrays, vars)) {
      return mk(ScanomapE{s->op, producer.f, s->neutral, producer.arrays});
    }
  }
  // Interposed let: `let zs = reduce ... vars in rest`, vars dead in rest.
  if (auto* l = consumer->as<LetE>()) {
    if (!any_var_free(vars, l->body)) {
      ExprP fused_rhs = try_fuse_let(vars, producer, l->rhs);
      if (fused_rhs) {
        return mk(LetE{l->vars, fused_rhs, l->body});
      }
    }
  }
  return nullptr;
}

ExprP fuse(const ExprP& e) {
  if (!e) return e;
  if (auto* l = e->as<LetE>()) {
    ExprP rhs = fuse(l->rhs);
    ExprP body = fuse(l->body);
    if (auto* m = rhs->as<MapE>()) {
      if (ExprP fused = try_fuse_let(l->vars, *m, body)) {
        return fused;
      }
    }
    return mk(LetE{l->vars, rhs, body});
  }
  if (auto* b = e->as<BinOpE>()) {
    return mk(BinOpE{b->op, fuse(b->lhs), fuse(b->rhs)});
  }
  if (auto* u = e->as<UnOpE>()) return mk(UnOpE{u->op, fuse(u->e)});
  if (auto* i = e->as<IfE>()) {
    return mk(IfE{fuse(i->cond), fuse(i->then_e), fuse(i->else_e)});
  }
  if (auto* lp = e->as<LoopE>()) {
    return mk(LoopE{lp->params, fuse_list(lp->inits), lp->ivar,
                    fuse(lp->count), fuse(lp->body)});
  }
  if (auto* m = e->as<MapE>()) {
    return mk(MapE{fuse_lambda(m->f), fuse_list(m->arrays)});
  }
  if (auto* r = e->as<ReduceE>()) {
    return mk(ReduceE{fuse_lambda(r->op), fuse_list(r->neutral),
                      fuse_list(r->arrays)});
  }
  if (auto* s = e->as<ScanE>()) {
    return mk(ScanE{fuse_lambda(s->op), fuse_list(s->neutral),
                    fuse_list(s->arrays)});
  }
  if (auto* rm = e->as<RedomapE>()) {
    return mk(RedomapE{fuse_lambda(rm->red), fuse_lambda(rm->mapf),
                       fuse_list(rm->neutral), fuse_list(rm->arrays)});
  }
  if (auto* sm = e->as<ScanomapE>()) {
    return mk(ScanomapE{fuse_lambda(sm->red), fuse_lambda(sm->mapf),
                        fuse_list(sm->neutral), fuse_list(sm->arrays)});
  }
  if (auto* rp = e->as<ReplicateE>()) {
    return mk(ReplicateE{rp->count, fuse(rp->elem)});
  }
  if (auto* ra = e->as<RearrangeE>()) {
    return mk(RearrangeE{ra->perm, fuse(ra->e)});
  }
  if (auto* ix = e->as<IndexE>()) {
    return mk(IndexE{fuse(ix->arr), fuse_list(ix->idxs)});
  }
  if (auto* t = e->as<TupleE>()) return mk(TupleE{fuse_list(t->elems)});
  return e;  // atoms
}

}  // namespace

ExprP fuse_expr(const ExprP& e) { return fuse(e); }

Program fuse_program(Program p) {
  p.body = fuse(p.body);
  return typecheck_program(std::move(p));
}

int64_t count_fused(const ExprP& e) {
  int64_t n = 0;
  // count via free_vars-style walk: reuse count_nodes pattern cheaply.
  std::function<void(const ExprP&)> walk = [&](const ExprP& x) {
    if (!x) return;
    if (x->is<RedomapE>() || x->is<ScanomapE>()) ++n;
    if (auto* l = x->as<LetE>()) {
      walk(l->rhs);
      walk(l->body);
    } else if (auto* lp = x->as<LoopE>()) {
      for (const auto& i : lp->inits) walk(i);
      walk(lp->body);
    } else if (auto* i = x->as<IfE>()) {
      walk(i->cond);
      walk(i->then_e);
      walk(i->else_e);
    } else if (auto* m = x->as<MapE>()) {
      walk(m->f.body);
      for (const auto& a : m->arrays) walk(a);
    } else if (auto* r = x->as<ReduceE>()) {
      walk(r->op.body);
      for (const auto& a : r->arrays) walk(a);
    } else if (auto* rm = x->as<RedomapE>()) {
      walk(rm->mapf.body);
      for (const auto& a : rm->arrays) walk(a);
    } else if (auto* sm = x->as<ScanomapE>()) {
      walk(sm->mapf.body);
      for (const auto& a : sm->arrays) walk(a);
    } else if (auto* t = x->as<TupleE>()) {
      for (const auto& y : t->elems) walk(y);
    }
  };
  walk(e);
  return n;
}

}  // namespace incflat
