#include "src/flatten/normalize.h"

#include <utility>
#include <vector>

#include "src/ir/builder.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/support/error.h"

namespace incflat {

namespace {

using Binds = std::vector<std::pair<std::string, ExprP>>;

struct Normalizer {
  ib::NameGen ng;

  /// Normalise a subexpression in *scalar operand position*: if it contains
  /// parallelism, emit a binding and return the bound variable.
  ExprP operand(const ExprP& e, Binds& binds) {
    ExprP n = norm(e);
    if (!has_soacs(n)) return n;
    std::string v = ng.fresh("anf");
    binds.emplace_back(v, n);
    return ib::var(v);
  }

  std::vector<ExprP> operands(const std::vector<ExprP>& es, Binds& binds) {
    std::vector<ExprP> out;
    out.reserve(es.size());
    for (const auto& e : es) out.push_back(operand(e, binds));
    return out;
  }

  static ExprP wrap(const Binds& binds, ExprP e) {
    for (auto it = binds.rbegin(); it != binds.rend(); ++it) {
      e = ib::let1(it->first, it->second, std::move(e));
    }
    return e;
  }

  Lambda norm_lambda(const Lambda& l) {
    return Lambda{l.params, norm(l.body)};
  }

  std::vector<ExprP> norm_list(const std::vector<ExprP>& es) {
    std::vector<ExprP> out;
    out.reserve(es.size());
    for (const auto& e : es) out.push_back(norm(e));
    return out;
  }

  ExprP norm(const ExprP& e) {
    if (!e) return e;
    if (e->is<VarE>() || e->is<ConstE>() || e->is<IotaE>() ||
        e->is<ThresholdCmpE>()) {
      return e;
    }
    if (auto* b = e->as<BinOpE>()) {
      Binds binds;
      ExprP l = operand(b->lhs, binds), r = operand(b->rhs, binds);
      return wrap(binds, ib::bin(b->op, l, r));
    }
    if (auto* u = e->as<UnOpE>()) {
      Binds binds;
      ExprP x = operand(u->e, binds);
      return wrap(binds, ib::un(u->op, x));
    }
    if (auto* i = e->as<IfE>()) {
      Binds binds;
      ExprP c = operand(i->cond, binds);
      return wrap(binds, ib::iff(c, norm(i->then_e), norm(i->else_e)));
    }
    if (auto* l = e->as<LetE>()) {
      return mk(LetE{l->vars, norm(l->rhs), norm(l->body)});
    }
    if (auto* lp = e->as<LoopE>()) {
      Binds binds;
      std::vector<ExprP> inits = operands(lp->inits, binds);
      ExprP count = operand(lp->count, binds);
      return wrap(binds,
                  mk(LoopE{lp->params, inits, lp->ivar, count,
                           norm(lp->body)}));
    }
    if (auto* m = e->as<MapE>()) {
      return mk(MapE{norm_lambda(m->f), norm_list(m->arrays)});
    }
    if (auto* r = e->as<ReduceE>()) {
      Binds binds;
      std::vector<ExprP> neutral = operands(r->neutral, binds);
      return wrap(binds, mk(ReduceE{norm_lambda(r->op), neutral,
                                    norm_list(r->arrays)}));
    }
    if (auto* s = e->as<ScanE>()) {
      Binds binds;
      std::vector<ExprP> neutral = operands(s->neutral, binds);
      return wrap(binds, mk(ScanE{norm_lambda(s->op), neutral,
                                  norm_list(s->arrays)}));
    }
    if (auto* rm = e->as<RedomapE>()) {
      Binds binds;
      std::vector<ExprP> neutral = operands(rm->neutral, binds);
      return wrap(binds,
                  mk(RedomapE{norm_lambda(rm->red), norm_lambda(rm->mapf),
                              neutral, norm_list(rm->arrays)}));
    }
    if (auto* sm = e->as<ScanomapE>()) {
      Binds binds;
      std::vector<ExprP> neutral = operands(sm->neutral, binds);
      return wrap(binds,
                  mk(ScanomapE{norm_lambda(sm->red), norm_lambda(sm->mapf),
                               neutral, norm_list(sm->arrays)}));
    }
    if (auto* rp = e->as<ReplicateE>()) {
      Binds binds;
      ExprP x = operand(rp->elem, binds);
      return wrap(binds, mk(ReplicateE{rp->count, x}));
    }
    if (auto* ra = e->as<RearrangeE>()) {
      return mk(RearrangeE{ra->perm, norm(ra->e)});
    }
    if (auto* ix = e->as<IndexE>()) {
      Binds binds;
      ExprP arr = operand(ix->arr, binds);
      std::vector<ExprP> idxs = operands(ix->idxs, binds);
      return wrap(binds, mk(IndexE{arr, idxs}));
    }
    if (auto* t = e->as<TupleE>()) {
      return mk(TupleE{norm_list(t->elems)});
    }
    INCFLAT_FAIL("normalize: unhandled node");
  }
};

}  // namespace

ExprP normalize_expr(const ExprP& e) {
  Normalizer n;
  return n.norm(e);
}

Program normalize_program(Program p) {
  p.body = normalize_expr(p.body);
  return typecheck_program(std::move(p));
}

}  // namespace incflat
