#include "src/flatten/flatten.h"

#include "src/pass/pass.h"
#include "src/support/error.h"
#include "src/support/trace.h"

namespace incflat {

const char* mode_name(FlattenMode m) {
  switch (m) {
    case FlattenMode::Moderate: return "moderate";
    case FlattenMode::Incremental: return "incremental";
    case FlattenMode::Full: return "full";
  }
  return "?";
}

FlattenMode mode_from_name(const std::string& name) {
  if (name == "moderate") return FlattenMode::Moderate;
  if (name == "incremental") return FlattenMode::Incremental;
  if (name == "full") return FlattenMode::Full;
  INCFLAT_FAIL("unknown flattening mode '" + name +
               "' (valid modes: moderate, incremental, full)");
}

FlattenResult flatten(const Program& src, FlattenMode mode,
                      const FlattenOptions& opts) {
  trace::Span span_all("flatten");
  PipelineState st;
  st.program = src;
  st.mode = mode;
  st.options = opts;
  flatten_pipeline(mode).run(st);
  return FlattenResult{std::move(st.program), std::move(st.thresholds)};
}

}  // namespace incflat
