#include "src/flatten/transform.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/ir/builder.h"
#include "src/ir/print.h"
#include "src/ir/traverse.h"
#include "src/ir/typecheck.h"
#include "src/support/error.h"
#include "src/support/trace.h"

namespace incflat {

namespace {

const Type& type_of(const TypeEnv& env, const std::string& name) {
  auto it = env.find(name);
  INCFLAT_CHECK(it != env.end(), "flatten: variable " + name + " untyped");
  return it->second;
}

std::set<std::string> space_dom(const SegSpace& sigma) {
  std::set<std::string> out;
  for (const auto& b : sigma) {
    out.insert(b.params.begin(), b.params.end());
  }
  return out;
}

std::vector<Dim> space_dims(const SegSpace& sigma) {
  std::vector<Dim> out;
  for (const auto& b : sigma) out.push_back(b.dim);
  return out;
}

/// Par(Σ): the product of the context's dimensions (paper Sec. 3.2).
SizeExpr par_of_space(const SegSpace& sigma) {
  SizeProd p;
  for (const auto& b : sigma) p *= b.dim;
  return SizeExpr::of(p);
}

/// Maximal degree of parallelism exposed by the seg-ops inside `e` (used
/// for Par(e_middle): the intra-group parallelism of the flattened body).
SizeExpr max_segop_par(const ExprP& e);

void collect_segop_pars(const ExprP& e, SizeExpr& acc);

void collect_list(const std::vector<ExprP>& es, SizeExpr& acc) {
  for (const auto& x : es) collect_segop_pars(x, acc);
}

void collect_segop_pars(const ExprP& e, SizeExpr& acc) {
  if (!e) return;
  if (auto* so = e->as<SegOpE>()) {
    acc = acc.max_with(par_of_space(so->space));
    collect_segop_pars(so->body, acc);
    return;
  }
  if (auto* b = e->as<BinOpE>()) {
    collect_segop_pars(b->lhs, acc);
    collect_segop_pars(b->rhs, acc);
  } else if (auto* u = e->as<UnOpE>()) {
    collect_segop_pars(u->e, acc);
  } else if (auto* i = e->as<IfE>()) {
    collect_segop_pars(i->then_e, acc);
    collect_segop_pars(i->else_e, acc);
  } else if (auto* l = e->as<LetE>()) {
    collect_segop_pars(l->rhs, acc);
    collect_segop_pars(l->body, acc);
  } else if (auto* lp = e->as<LoopE>()) {
    collect_list(lp->inits, acc);
    collect_segop_pars(lp->body, acc);
  } else if (auto* t = e->as<TupleE>()) {
    collect_list(t->elems, acc);
  }
  // Other nodes cannot contain seg-ops directly after flattening at level 0.
}

SizeExpr max_segop_par(const ExprP& e) {
  SizeExpr acc;
  collect_segop_pars(e, acc);
  if (acc.alts.empty()) acc = SizeExpr::one();
  return acc;
}

struct Flattener {
  FlattenMode mode;
  ib::NameGen ng;
  ThresholdRegistry thresholds;
  GuardPath path;

  bool incremental() const { return mode == FlattenMode::Incremental; }

  // -- small helpers --------------------------------------------------------

  /// Names for SOAC array operands; non-Var operands are hoisted into
  /// `hoists` (they must be invariant to sigma).
  std::vector<std::string> ensure_vars(
      const std::vector<ExprP>& args, const SegSpace& sigma, TypeEnv& env,
      std::vector<std::pair<std::string, ExprP>>& hoists) {
    std::vector<std::string> out;
    const auto dom = space_dom(sigma);
    for (const auto& a : args) {
      if (auto* v = a->as<VarE>()) {
        out.push_back(v->name);
        continue;
      }
      for (const auto& fvn : free_vars(a)) {
        INCFLAT_CHECK(!dom.count(fvn),
                      "cannot hoist context-variant SOAC operand");
      }
      std::string name = ng.fresh("arr");
      env[name] = a->type();
      hoists.emplace_back(name, a);
      out.push_back(name);
    }
    return out;
  }

  static ExprP wrap_hoists(
      const std::vector<std::pair<std::string, ExprP>>& hoists, ExprP e) {
    for (auto it = hoists.rbegin(); it != hoists.rend(); ++it) {
      e = mk(LetE{{it->first}, it->second, e});
    }
    return e;
  }

  /// Extend sigma with one level binding `params` to rows of `arrays`.
  SegSpace add_level(const SegSpace& sigma, std::vector<std::string> params,
                     std::vector<std::string> arrays, TypeEnv& env) {
    SegBind bind;
    bind.params = std::move(params);
    bind.arrays = std::move(arrays);
    const Type& at = type_of(env, bind.arrays.at(0));
    INCFLAT_CHECK(at.rank() >= 1, "seg-space over scalar array");
    bind.dim = at.shape[0];
    for (size_t i = 0; i < bind.params.size(); ++i) {
      env[bind.params[i]] = type_of(env, bind.arrays[i]).row();
    }
    SegSpace out = sigma;
    out.push_back(std::move(bind));
    return out;
  }

  /// If `name` is bound by the innermost binder and its source chains up
  /// through every level of sigma, return the top-level array name.
  static const std::string* chain_top(const std::string& name,
                                      const SegSpace& sigma) {
    const std::string* cur = &name;
    for (size_t k = sigma.size(); k > 0; --k) {
      const SegBind& b = sigma[k - 1];
      auto it = std::find(b.params.begin(), b.params.end(), *cur);
      if (it == b.params.end()) return nullptr;
      cur = &b.arrays[static_cast<size_t>(it - b.params.begin())];
    }
    return cur;
  }

  /// Collapse a Var (or tuple of Vars) that fully chains through sigma.
  ExprP collapse_chain(const ExprP& e, const SegSpace& sigma) {
    auto collapse1 = [&](const ExprP& x) -> ExprP {
      auto* v = x->as<VarE>();
      if (!v) return nullptr;
      const std::string* top = chain_top(v->name, sigma);
      return top ? ib::var(*top) : nullptr;
    };
    if (e->is<VarE>()) return collapse1(e);
    if (auto* t = e->as<TupleE>()) {
      std::vector<ExprP> elems;
      for (const auto& x : t->elems) {
        ExprP c = collapse1(x);
        if (!c) return nullptr;
        elems.push_back(c);
      }
      return ib::tuple(elems);
    }
    return nullptr;
  }

  /// Manifest the map-nest context over a (from now on sequential) body:
  /// rules G1 and G2.
  ExprP manifest(const SegSpace& sigma, int level, const ExprP& body) {
    INCFLAT_CHECK(!sigma.empty(), "manifest with empty context");
    trace::count("flatten.manifests");
    SegOpE so;
    so.op = SegOpE::Op::Map;
    so.level = level;
    so.space = sigma;
    so.body = body;
    return mk(std::move(so));
  }

  /// Thread an expanded array (`top`, with |sigma| extra outer dims) down
  /// through sigma so that `inner` is bound to its fully-peeled rows — the
  /// binding structure of rule G6 (and reused by G7).
  SegSpace chain_through(const SegSpace& sigma, const std::string& top,
                         const std::string& inner, TypeEnv& env) {
    SegSpace out = sigma;
    std::string cur = top;
    for (size_t k = 0; k < out.size(); ++k) {
      const bool innermost = k + 1 == out.size();
      std::string next = innermost ? inner : ng.fresh(inner + "_c");
      out[k].params.push_back(next);
      out[k].arrays.push_back(cur);
      env[next] = type_of(env, cur).row();
      cur = next;
    }
    return out;
  }

  // -- the transformation ---------------------------------------------------

  ExprP transform(const SegSpace& sigma, int level, const ExprP& e,
                  TypeEnv env) {
    INCFLAT_CHECK(e != nullptr, "transform of null");

    // G0 / G1 / G2: no inner parallelism left.
    if (!has_soacs(e)) {
      if (sigma.empty()) {
        trace::count("flatten.rule.G0");
        return e;
      }
      // Identity nests: manifesting a variable that chains through every
      // context level just reproduces the underlying whole array — emit
      // that array instead of a copy kernel.
      if (ExprP collapsed = collapse_chain(e, sigma)) return collapsed;
      // G5 applies to rearranges even without inner SOACs.
      if (auto* ra = e->as<RearrangeE>()) {
        return rearrange_case(*ra, e, sigma, level, env);
      }
      trace::count("flatten.rule.G1");
      return manifest(sigma, level, e);
    }

    if (auto* l = e->as<LetE>()) return let_case(*l, sigma, level, env);
    if (auto* m = e->as<MapE>()) return map_case(*m, sigma, level, env);
    if (auto* s = e->as<ScanE>()) return scan_case(*s, sigma, level, env);
    if (auto* sm = e->as<ScanomapE>()) {
      return scanomap_case(*sm, sigma, level, env);
    }
    if (auto* r = e->as<ReduceE>()) return reduce_case(*r, sigma, level, env);
    if (auto* rm = e->as<RedomapE>()) {
      return redomap_case(*rm, sigma, level, env);
    }
    if (auto* lp = e->as<LoopE>()) return loop_case(*lp, sigma, level, env);
    if (auto* i = e->as<IfE>()) return if_case(*i, sigma, level, env);
    if (auto* ra = e->as<RearrangeE>()) {
      return rearrange_case(*ra, e, sigma, level, env);
    }
    if (auto* t = e->as<TupleE>()) {
      std::vector<ExprP> elems;
      for (const auto& x : t->elems) {
        elems.push_back(transform(sigma, level, x, env));
      }
      return mk(TupleE{std::move(elems)});
    }

    // Fallback: sequentialise under the context.
    if (sigma.empty()) return e;
    return manifest(sigma, level, e);
  }

  // G6: let-distribution.  Sequential bindings are sunk (substituted) into
  // the body; parallel bindings are flattened under sigma and their results
  // threaded through the context as expanded arrays.
  ExprP let_case(const LetE& l, const SegSpace& sigma, int level,
                 TypeEnv env) {
    if (sigma.empty()) {
      ExprP rhs2 = transform(sigma, level, l.rhs, env);
      TypeEnv env2 = env;
      INCFLAT_CHECK(l.rhs->types.size() == l.vars.size(),
                    "let arity in flatten");
      for (size_t i = 0; i < l.vars.size(); ++i) {
        env2[l.vars[i]] = l.rhs->types[i];
      }
      ExprP body2 = transform(sigma, level, l.body, env2);
      return mk(LetE{l.vars, rhs2, body2});
    }

    if (!has_soacs(l.rhs)) {
      // A sequential binding can be *sunk* into its uses (recomputed per
      // thread) when it is scalar, or array-typed but invariant to the
      // context (then any SOAC consuming it can hoist it).  Context-variant
      // array bindings must go through G6 distribution so seg-spaces can
      // reference them by name.
      const bool all_scalar = std::all_of(
          l.rhs->types.begin(), l.rhs->types.end(),
          [](const Type& t) { return t.is_scalar(); });
      bool invariant = true;
      const auto dom = space_dom(sigma);
      for (const auto& fvn : free_vars(l.rhs)) {
        if (dom.count(fvn)) {
          invariant = false;
          break;
        }
      }
      if (all_scalar || invariant) {
        std::map<std::string, ExprP> sub;
        if (l.vars.size() == 1) {
          sub[l.vars[0]] = l.rhs;
        } else if (auto* t = l.rhs->as<TupleE>()) {
          INCFLAT_CHECK(t->elems.size() == l.vars.size(), "tuple let arity");
          for (size_t i = 0; i < l.vars.size(); ++i) {
            sub[l.vars[i]] = t->elems[i];
          }
        } else {
          // Sequential multi-result rhs (e.g. a loop): distribute instead.
          return distribute_binding(l, sigma, level, env);
        }
        return transform(sigma, level, subst_vars(l.body, sub), env);
      }
      return distribute_binding(l, sigma, level, env);
    }

    return distribute_binding(l, sigma, level, env);
  }

  ExprP distribute_binding(const LetE& l, const SegSpace& sigma, int level,
                           TypeEnv env) {
    trace::count("flatten.rule.G6");
    ExprP rhs2 = transform(sigma, level, l.rhs, env);
    INCFLAT_CHECK(l.rhs->types.size() == l.vars.size(),
                  "let arity in distribute");
    const std::vector<Dim> dims = space_dims(sigma);
    TypeEnv env2 = env;
    SegSpace sigma2 = sigma;
    std::vector<std::string> tops;
    for (size_t i = 0; i < l.vars.size(); ++i) {
      std::string top = ng.fresh(l.vars[i] + "_exp");
      env2[top] = l.rhs->types[i].expand(dims);
      sigma2 = chain_through(sigma2, top, l.vars[i], env2);
      tops.push_back(top);
    }
    ExprP body2 = transform(sigma2, level, l.body, env2);
    return mk(LetE{tops, rhs2, body2});
  }

  // G2 / G3 (and the moderate/full recursion) at a map.
  ExprP map_case(const MapE& m, const SegSpace& sigma, int level,
                 TypeEnv env) {
    std::vector<std::pair<std::string, ExprP>> hoists;
    TypeEnv env1 = env;
    std::vector<std::string> arrs = ensure_vars(m.arrays, sigma, env1, hoists);
    std::vector<std::string> params;
    for (const auto& p : m.f.params) params.push_back(p.name);
    TypeEnv envp = env1;
    SegSpace sigmap = add_level(sigma, params, arrs, envp);
    const ExprP& body = m.f.body;

    if (!has_soacs(body)) {
      if (body->is<RearrangeE>()) {
        // Give rule G5 a chance to lift the rearrange out of the nest.
        return wrap_hoists(hoists, transform(sigmap, level, body, envp));
      }
      // G2: body fully sequential; manifest the whole nest.
      trace::count("flatten.rule.G2");
      return wrap_hoists(hoists, manifest(sigmap, level, body));
    }

    if (!incremental() || level == 0) {
      // Moderate / full / intra-group: continue flattening, no versioning.
      return wrap_hoists(hoists, transform(sigmap, level, body, envp));
    }

    // G3: three guarded versions.
    const size_t reg_mark = thresholds.size();
    ExprP e_top = manifest(sigmap, level, body);
    const SizeExpr par_outer = par_of_space(sigmap);
    const std::string t_top = thresholds.fresh("suff_outer_par", par_outer,
                                               SizeExpr{}, path);
    const GuardPath saved_path = path;
    path.emplace_back(t_top, false);

    // e_intra: the body flattened at the next hardware level down, with an
    // empty context (one workgroup per instance of the current nest).
    ExprP e_intra_body = transform({}, level - 1, body, envp);
    ExprP e_middle;
    std::string t_intra;
    SizeExpr fit_intra;
    if (count_segops(e_intra_body) > 0) {
      e_middle = manifest(sigmap, level, e_intra_body);
      fit_intra = max_segop_par(e_intra_body);
      const SizeExpr par_middle = fit_intra.times(par_outer.alts.at(0));
      t_intra = thresholds.fresh("suff_intra_par", par_middle, fit_intra,
                                 path);
      path.emplace_back(t_intra, false);
    }

    ExprP e_flat = transform(sigmap, level, body, envp);
    path = saved_path;

    ExprP guarded;
    const bool flat_is_top = pretty(e_flat) == pretty(e_top);
    if (!e_middle && flat_is_top) {
      // Degenerate: no inner parallelism was actually exploitable.
      // Roll back the threshold and emit the single version.
      thresholds.truncate(reg_mark);
      trace::count("flatten.rule.G3.degenerate");
      guarded = e_top;
    } else {
      trace::count("flatten.rule.G3");
      trace::count("flatten.versions", e_middle ? 3 : 2);
      ExprP rest = e_flat;
      if (e_middle) {
        ExprP cmp_intra = mk(
            ThresholdCmpE{t_intra, thresholds.info(t_intra).par, fit_intra});
        rest = mk(IfE{cmp_intra, e_middle, e_flat});
      }
      ExprP cmp_top = mk(ThresholdCmpE{t_top, par_outer, SizeExpr{}});
      guarded = mk(IfE{cmp_top, e_top, rest});
    }
    return wrap_hoists(hoists, guarded);
  }

  // Perfect scan nest -> segscan (both modes parallelise perfect scans).
  ExprP scan_case(const ScanE& s, const SegSpace& sigma, int level,
                  TypeEnv env) {
    check_invariant_neutral(s.neutral, sigma);
    std::vector<std::pair<std::string, ExprP>> hoists;
    TypeEnv env1 = env;
    std::vector<std::string> arrs = ensure_vars(s.arrays, sigma, env1, hoists);
    std::vector<std::string> params;
    std::vector<ExprP> elems;
    for (size_t i = 0; i < arrs.size(); ++i) {
      std::string p = ng.fresh("e");
      params.push_back(p);
      elems.push_back(ib::var(p));
    }
    TypeEnv envp = env1;
    SegSpace sigmap = add_level(sigma, params, arrs, envp);
    SegOpE so;
    so.op = SegOpE::Op::Scan;
    so.level = level;
    so.space = sigmap;
    so.combine = s.op;
    so.neutral = s.neutral;
    so.body = elems.size() == 1 ? elems[0] : ib::tuple(elems);
    return wrap_hoists(hoists, mk(std::move(so)));
  }

  ExprP scanomap_case(const ScanomapE& s, const SegSpace& sigma, int level,
                      TypeEnv env) {
    check_invariant_neutral(s.neutral, sigma);
    std::vector<std::pair<std::string, ExprP>> hoists;
    TypeEnv env1 = env;
    std::vector<std::string> arrs = ensure_vars(s.arrays, sigma, env1, hoists);
    std::vector<std::string> params;
    for (const auto& p : s.mapf.params) params.push_back(p.name);
    TypeEnv envp = env1;
    SegSpace sigmap = add_level(sigma, params, arrs, envp);
    SegOpE so;
    so.op = SegOpE::Op::Scan;
    so.level = level;
    so.space = sigmap;
    so.combine = s.red;
    so.neutral = s.neutral;
    so.body = s.mapf.body;
    return wrap_hoists(hoists, mk(std::move(so)));
  }

  // G4 + perfect reduce nest -> segred.
  ExprP reduce_case(const ReduceE& r, const SegSpace& sigma, int level,
                    TypeEnv env) {
    if (ExprP g4 = try_g4(r, env)) {
      trace::count("flatten.rule.G4");
      return transform(sigma, level, g4, env);
    }
    check_invariant_neutral(r.neutral, sigma);
    std::vector<std::pair<std::string, ExprP>> hoists;
    TypeEnv env1 = env;
    std::vector<std::string> arrs = ensure_vars(r.arrays, sigma, env1, hoists);
    std::vector<std::string> params;
    std::vector<ExprP> elems;
    for (size_t i = 0; i < arrs.size(); ++i) {
      std::string p = ng.fresh("e");
      params.push_back(p);
      elems.push_back(ib::var(p));
    }
    TypeEnv envp = env1;
    SegSpace sigmap = add_level(sigma, params, arrs, envp);
    SegOpE so;
    so.op = SegOpE::Op::Red;
    so.level = level;
    so.space = sigmap;
    so.combine = r.op;
    so.neutral = r.neutral;
    so.body = elems.size() == 1 ? elems[0] : ib::tuple(elems);
    return wrap_hoists(hoists, mk(std::move(so)));
  }

  /// G4: reduce (map g) (replicate k d) zss  ==>
  ///     map (reduce g d) (transpose zss); returns null if no match.
  ExprP try_g4(const ReduceE& r, const TypeEnv& env) {
    if (r.arrays.size() != 1 || r.neutral.size() != 1) return nullptr;
    auto* repl = r.neutral[0]->as<ReplicateE>();
    if (!repl) return nullptr;
    auto* inner_map = r.op.body->as<MapE>();
    if (!inner_map || r.op.params.size() != 2) return nullptr;
    // The operator must map over exactly its two formal parameters.
    if (inner_map->arrays.size() != 2) return nullptr;
    auto* a0 = inner_map->arrays[0]->as<VarE>();
    auto* a1 = inner_map->arrays[1]->as<VarE>();
    if (!a0 || !a1 || a0->name != r.op.params[0].name ||
        a1->name != r.op.params[1].name) {
      return nullptr;
    }
    std::string col = ng.fresh("col");
    ExprP rewritten = ib::map1(
        ib::lam({ib::p(col, Type())},
                ib::reduce(inner_map->f, {repl->elem}, {ib::var(col)})),
        ib::transpose(r.arrays[0]));
    return typecheck_expr(rewritten, env);
  }

  // Redomap: mode-dependent treatment (G9 under incremental flattening).
  ExprP redomap_case(const RedomapE& rm, const SegSpace& sigma, int level,
                     TypeEnv env) {
    check_invariant_neutral(rm.neutral, sigma);
    const bool inner_par = has_soacs(rm.mapf.body);

    if (mode == FlattenMode::Moderate) {
      if (!sigma.empty()) {
        // The moderate heuristic: sequentialise inner redomaps (enables
        // tiling) — manifest the whole nest.
        return manifest(sigma, level,
                        mk(RedomapE{rm.red, rm.mapf, rm.neutral, rm.arrays},
                           std::vector<Type>()));
      }
      return segred_of(rm, sigma, level, env);
    }

    if (mode == FlattenMode::Full) {
      if (inner_par) return decompose_redomap(rm, sigma, level, env);
      return segred_of(rm, sigma, level, env);
    }

    // Incremental: the not-shown rule (no inner parallelism -> segred
    // directly), else G9.  At level 0 there is no hardware level below to
    // version against, so the redomap is decomposed unguarded.
    if (!inner_par) return segred_of(rm, sigma, level, env);
    if (level == 0) return decompose_redomap(rm, sigma, level, env);

    trace::count("flatten.rule.G9");
    trace::count("flatten.versions", 2);
    TypeEnv envp = env;
    std::vector<std::pair<std::string, ExprP>> hoists;
    std::vector<std::string> arrs = ensure_vars(rm.arrays, sigma, envp, hoists);
    std::vector<std::string> params;
    for (const auto& p : rm.mapf.params) params.push_back(p.name);
    TypeEnv envb = envp;
    SegSpace sigmap = add_level(sigma, params, arrs, envb);

    SegOpE top;
    top.op = SegOpE::Op::Red;
    top.level = level;
    top.space = sigmap;
    top.combine = rm.red;
    top.neutral = rm.neutral;
    top.body = rm.mapf.body;
    ExprP e_top = mk(std::move(top));

    const SizeExpr par_outer = par_of_space(sigmap);
    const std::string t = thresholds.fresh("suff_outer_par", par_outer,
                                           SizeExpr{}, path);
    const GuardPath saved_path = path;
    path.emplace_back(t, false);
    ExprP e_rec = decompose_redomap(rm, sigma, level, env);
    path = saved_path;

    ExprP cmp = mk(ThresholdCmpE{t, par_outer, SizeExpr{}});
    return wrap_hoists(hoists, mk(IfE{cmp, e_top, e_rec}));
  }

  /// Decompose redomap ⊕ f d̄ x̄s into `let ys = map f xs in reduce ⊕ d̄ ys`
  /// and flatten the result (G9's recursive arm).
  ExprP decompose_redomap(const RedomapE& rm, const SegSpace& sigma,
                          int level, const TypeEnv& env) {
    std::vector<std::string> ys;
    std::vector<ExprP> yvars;
    for (size_t i = 0; i < rm.mapf.body->types.size(); ++i) {
      ys.push_back(ng.fresh("y"));
      yvars.push_back(ib::var(ys.back()));
    }
    ExprP decomposed =
        ib::letn(ys, ib::map(rm.mapf, rm.arrays),
                 ib::reduce(rm.red, rm.neutral, yvars));
    decomposed = typecheck_expr(decomposed, env);
    return transform(sigma, level, decomposed, env);
  }

  ExprP segred_of(const RedomapE& rm, const SegSpace& sigma, int level,
                  TypeEnv env) {
    std::vector<std::pair<std::string, ExprP>> hoists;
    TypeEnv env1 = env;
    std::vector<std::string> arrs = ensure_vars(rm.arrays, sigma, env1, hoists);
    std::vector<std::string> params;
    for (const auto& p : rm.mapf.params) params.push_back(p.name);
    TypeEnv envp = env1;
    SegSpace sigmap = add_level(sigma, params, arrs, envp);
    SegOpE so;
    so.op = SegOpE::Op::Red;
    so.level = level;
    so.space = sigmap;
    so.combine = rm.red;
    so.neutral = rm.neutral;
    so.body = rm.mapf.body;
    return wrap_hoists(hoists, mk(std::move(so)));
  }

  // G7: interchange a map-nest context into a loop.
  ExprP loop_case(const LoopE& lp, const SegSpace& sigma, int level,
                  TypeEnv env) {
    if (sigma.empty()) {
      // Host level: flatten the body; the loop itself stays sequential.
      TypeEnv env2 = env;
      std::vector<Type> ptys;
      for (size_t i = 0; i < lp.params.size(); ++i) {
        ptys.push_back(lp.inits[i]->type());
        env2[lp.params[i]] = ptys.back();
      }
      env2[lp.ivar] = Type::scalar(Scalar::I64);
      ExprP body2 = transform(sigma, level, lp.body, env2);
      return mk(LoopE{lp.params, lp.inits, lp.ivar, lp.count, body2});
    }

    // The loop count must be invariant to the context.
    const auto dom = space_dom(sigma);
    for (const auto& fvn : free_vars(lp.count)) {
      if (dom.count(fvn)) {
        // Cannot interchange: sequentialise the whole nest.
        return manifest(sigma, level,
                        mk(LoopE{lp.params, lp.inits, lp.ivar, lp.count,
                                 lp.body},
                           std::vector<Type>()));
      }
    }

    trace::count("flatten.rule.G7");
    const std::vector<Dim> dims = space_dims(sigma);
    TypeEnv env2 = env;
    SegSpace sigma2 = sigma;
    std::vector<std::string> new_params;
    std::vector<ExprP> new_inits;
    for (size_t i = 0; i < lp.params.size(); ++i) {
      const Type init_ty = lp.inits[i]->type();
      std::string top = ng.fresh(lp.params[i] + "_exp");
      env2[top] = init_ty.expand(dims);
      new_params.push_back(top);
      new_inits.push_back(expand_init(lp.inits[i], sigma, env));
      sigma2 = chain_through(sigma2, top, lp.params[i], env2);
    }
    env2[lp.ivar] = Type::scalar(Scalar::I64);
    ExprP body2 = transform(sigma2, level, lp.body, env2);
    return mk(LoopE{new_params, new_inits, lp.ivar, lp.count, body2});
  }

  /// The expansion z^r of a loop initialiser across the context (rule G7):
  /// context-bound chains resolve to the underlying whole array; invariant
  /// values are replicated over the context's dimensions.
  ExprP expand_init(const ExprP& init, const SegSpace& sigma,
                    const TypeEnv& env) {
    if (auto* v = init->as<VarE>()) {
      // Chase binder chains from the innermost level outwards.
      std::string name = v->name;
      size_t levels = sigma.size();
      while (levels > 0) {
        const SegBind& b = sigma[levels - 1];
        auto it = std::find(b.params.begin(), b.params.end(), name);
        if (it == b.params.end()) break;
        name = b.arrays[static_cast<size_t>(it - b.params.begin())];
        --levels;
      }
      // `name` must now be invariant to the remaining outer levels.
      for (size_t k = 0; k < levels; ++k) {
        const auto& b = sigma[k];
        INCFLAT_CHECK(
            std::find(b.params.begin(), b.params.end(), name) ==
                b.params.end(),
            "loop initialiser bound at a non-innermost context level");
      }
      ExprP out = typecheck_expr(ib::var(name), env);
      for (size_t k = levels; k > 0; --k) {
        out = mk(ReplicateE{sigma[k - 1].dim, out});
      }
      return out;
    }
    // Invariant non-var initialiser: replicate over all levels.
    const auto dom = space_dom(sigma);
    for (const auto& fvn : free_vars(init)) {
      INCFLAT_CHECK(!dom.count(fvn), "context-variant loop initialiser");
    }
    ExprP out = init;
    for (size_t k = sigma.size(); k > 0; --k) {
      out = mk(ReplicateE{sigma[k - 1].dim, out});
    }
    return out;
  }

  // G8: push the context's innermost map into invariant branches
  // (incremental and full flattening only; moderate manifests).
  ExprP if_case(const IfE& i, const SegSpace& sigma, int level, TypeEnv env) {
    if (sigma.empty()) {
      ExprP t = transform(sigma, level, i.then_e, env);
      ExprP f = transform(sigma, level, i.else_e, env);
      return mk(IfE{i.cond, t, f});
    }
    if (mode == FlattenMode::Moderate) {
      return manifest(sigma, level,
                      mk(IfE{i.cond, i.then_e, i.else_e},
                         std::vector<Type>()));
    }
    const auto dom = space_dom(sigma);
    for (const auto& fvn : free_vars(i.cond)) {
      if (dom.count(fvn)) {
        return manifest(sigma, level,
                        mk(IfE{i.cond, i.then_e, i.else_e},
                           std::vector<Type>()));
      }
    }
    // Take the innermost binder out and re-derive each branch as a map, so
    // rule G3 immediately sees the whole inner parallelism.
    trace::count("flatten.rule.G8");
    SegSpace outer(sigma.begin(), sigma.end() - 1);
    const SegBind& inner = sigma.back();
    auto remap = [&](const ExprP& branch) {
      std::vector<Param> params;
      std::vector<ExprP> arrays;
      for (size_t k = 0; k < inner.params.size(); ++k) {
        params.push_back(ib::p(inner.params[k],
                               type_of(env, inner.arrays[k]).row()));
        arrays.push_back(typecheck_expr(ib::var(inner.arrays[k]), env));
      }
      ExprP m = mk(MapE{Lambda{params, branch}, arrays});
      m = typecheck_expr(m, env);
      return transform(outer, level, m, env);
    };
    ExprP t = remap(i.then_e);
    ExprP f = remap(i.else_e);
    return mk(IfE{i.cond, t, f});
  }

  // G5: rearrange of the innermost context-bound array becomes a rearrange
  // of the whole array one level up.
  ExprP rearrange_case(const RearrangeE& ra, const ExprP& e,
                       const SegSpace& sigma, int level, TypeEnv env) {
    if (sigma.empty()) return e;  // plain metadata op at host level
    auto* v = ra.e->as<VarE>();
    if (v) {
      const SegBind& inner = sigma.back();
      auto it = std::find(inner.params.begin(), inner.params.end(), v->name);
      if (it != inner.params.end()) {
        trace::count("flatten.rule.G5");
        const std::string arr =
            inner.arrays[static_cast<size_t>(it - inner.params.begin())];
        std::vector<int> perm{0};
        for (int k : ra.perm) perm.push_back(1 + k);
        SegSpace outer(sigma.begin(), sigma.end() - 1);
        ExprP lifted = typecheck_expr(ib::rearrange(perm, ib::var(arr)), env);
        return transform(outer, level, lifted, env);
      }
    }
    return manifest(sigma, level, e);
  }

  void check_invariant_neutral(const std::vector<ExprP>& neutral,
                               const SegSpace& sigma) {
    const auto dom = space_dom(sigma);
    for (const auto& n : neutral) {
      for (const auto& fvn : free_vars(n)) {
        INCFLAT_CHECK(!dom.count(fvn),
                      "context-variant neutral element unsupported");
      }
    }
  }
};

}  // namespace

TransformResult transform_program(const Program& anf, FlattenMode mode) {
  Flattener fl;
  fl.mode = mode;

  TypeEnv env;
  for (const auto& in : anf.inputs) env[in.name] = in.type;
  for (const auto& sp : anf.size_params()) env[sp] = Type::scalar(Scalar::I64);

  // Flattening starts at the GPU grid level (l = 1) with an empty context.
  ExprP body = fl.transform({}, 1, anf.body, env);
  if (trace::enabled()) {
    trace::count("flatten.thresholds",
                 static_cast<int64_t>(fl.thresholds.size()));
  }
  return TransformResult{std::move(body), std::move(fl.thresholds)};
}

}  // namespace incflat
