#include "src/interp/value.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/support/error.h"
#include "src/support/str.h"

namespace incflat {

namespace {

int64_t shape_count(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

}  // namespace

size_t Value::flat_size() const {
  return static_cast<size_t>(shape_count(shape_));
}

Value Value::scalar_int(Scalar tag, int64_t v) {
  Value out;
  out.tag_ = tag;
  out.idata_ = {v};
  return out;
}

Value Value::scalar_float(Scalar tag, double v) {
  Value out;
  out.tag_ = tag;
  out.fdata_ = {v};
  return out;
}

Value Value::scalar_bool(bool v) {
  return scalar_int(Scalar::Bool, v ? 1 : 0);
}

Value Value::zeros(Scalar tag, std::vector<int64_t> shape) {
  Value out;
  out.tag_ = tag;
  out.shape_ = std::move(shape);
  const size_t n = out.flat_size();
  if (scalar_is_float(tag)) {
    out.fdata_.assign(n, 0.0);
  } else {
    out.idata_.assign(n, 0);
  }
  return out;
}

Value Value::stack(const std::vector<Value>& rows) {
  if (rows.empty()) throw EvalError("stack of zero rows");
  const Value& first = rows[0];
  std::vector<int64_t> shape;
  shape.push_back(static_cast<int64_t>(rows.size()));
  shape.insert(shape.end(), first.shape_.begin(), first.shape_.end());
  Value out = zeros(first.tag_, shape);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].shape_ != first.shape_ || rows[i].tag_ != first.tag_) {
      throw EvalError("stack of irregular rows");
    }
    out.set_row(static_cast<int64_t>(i), rows[i]);
  }
  return out;
}

int64_t Value::count() const { return shape_count(shape_); }

int64_t Value::as_int() const {
  if (!is_scalar()) throw EvalError("as_int on array");
  return is_float() ? static_cast<int64_t>(fdata_[0]) : idata_[0];
}

double Value::as_float() const {
  if (!is_scalar()) throw EvalError("as_float on array");
  return is_float() ? fdata_[0] : static_cast<double>(idata_[0]);
}

bool Value::as_bool() const {
  if (!is_scalar() || tag_ != Scalar::Bool) {
    throw EvalError("as_bool on non-bool");
  }
  return idata_[0] != 0;
}

Value Value::row(int64_t i) const {
  if (rank() < 1) throw EvalError("row of scalar");
  if (i < 0 || i >= shape_[0]) {
    throw EvalError("row index " + std::to_string(i) + " out of bounds " +
                    std::to_string(shape_[0]));
  }
  Value out;
  out.tag_ = tag_;
  out.shape_.assign(shape_.begin() + 1, shape_.end());
  const int64_t stride = shape_count(out.shape_);
  if (is_float()) {
    out.fdata_.assign(fdata_.begin() + i * stride,
                      fdata_.begin() + (i + 1) * stride);
  } else {
    out.idata_.assign(idata_.begin() + i * stride,
                      idata_.begin() + (i + 1) * stride);
  }
  return out;
}

Value Value::index(const std::vector<int64_t>& idxs) const {
  Value cur = *this;
  for (int64_t ix : idxs) cur = cur.row(ix);
  return cur;
}

Value Value::rearrange(const std::vector<int>& perm) const {
  const int r = rank();
  if (static_cast<int>(perm.size()) != r) {
    throw EvalError("rearrange rank mismatch");
  }
  std::vector<int64_t> new_shape(static_cast<size_t>(r));
  for (int k = 0; k < r; ++k) {
    new_shape[static_cast<size_t>(k)] = shape_[static_cast<size_t>(perm[static_cast<size_t>(k)])];
  }
  Value out = zeros(tag_, new_shape);
  // strides of the original array
  std::vector<int64_t> stride(static_cast<size_t>(r), 1);
  for (int k = r - 2; k >= 0; --k) {
    stride[static_cast<size_t>(k)] =
        stride[static_cast<size_t>(k + 1)] * shape_[static_cast<size_t>(k + 1)];
  }
  const int64_t n = count();
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);  // index in new layout
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t src = 0;
    for (int k = 0; k < r; ++k) {
      src += idx[static_cast<size_t>(k)] *
             stride[static_cast<size_t>(perm[static_cast<size_t>(k)])];
    }
    if (is_float()) {
      out.fdata_[static_cast<size_t>(flat)] = fdata_[static_cast<size_t>(src)];
    } else {
      out.idata_[static_cast<size_t>(flat)] = idata_[static_cast<size_t>(src)];
    }
    for (int k = r - 1; k >= 0; --k) {
      if (++idx[static_cast<size_t>(k)] < new_shape[static_cast<size_t>(k)]) break;
      idx[static_cast<size_t>(k)] = 0;
    }
  }
  return out;
}

void Value::set_row(int64_t i, const Value& v) {
  const int64_t stride = v.count();
  if (is_float()) {
    std::copy(v.fdata_.begin(), v.fdata_.end(),
              fdata_.begin() + i * stride);
  } else {
    std::copy(v.idata_.begin(), v.idata_.end(),
              idata_.begin() + i * stride);
  }
}

bool Value::approx_equal(const Value& o, double tol) const {
  if (shape_ != o.shape_) return false;
  if (is_float() != o.is_float()) return false;
  if (is_float()) {
    for (size_t k = 0; k < fdata_.size(); ++k) {
      const double a = fdata_[k], b = o.fdata_[k];
      const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
      if (std::fabs(a - b) > tol * scale) return false;
    }
    return true;
  }
  return idata_ == o.idata_;
}

std::string Value::str() const {
  std::ostringstream os;
  if (is_scalar()) {
    if (is_float()) {
      os << fdata_[0];
    } else if (tag_ == Scalar::Bool) {
      os << (idata_[0] ? "true" : "false");
    } else {
      os << idata_[0];
    }
    return os.str();
  }
  os << "[";
  for (int64_t i = 0; i < shape_[0]; ++i) {
    if (i) os << ", ";
    if (i > 8) {
      os << "...";
      break;
    }
    os << row(i).str();
  }
  os << "]";
  return os.str();
}

}  // namespace incflat
