// Runtime values for the reference interpreter.
//
// A Value is a scalar or a dense row-major multidimensional array.  Floats
// are stored as double and integers/booleans as int64_t regardless of the
// declared scalar width; the declared Scalar tag is kept so printing and
// conversions behave as expected.  This interpreter defines the *semantics*
// against which all compiled (flattened) programs are validated; it is not a
// performance path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ir/type.h"

namespace incflat {

class Value {
 public:
  Value() = default;

  static Value scalar_int(Scalar tag, int64_t v);
  static Value scalar_float(Scalar tag, double v);
  static Value scalar_bool(bool v);
  static Value i64(int64_t v) { return scalar_int(Scalar::I64, v); }
  static Value f32(double v) { return scalar_float(Scalar::F32, v); }

  /// Uninitialised (zero-filled) array of the given concrete shape.
  static Value zeros(Scalar tag, std::vector<int64_t> shape);

  /// Stack equal-shaped values into an array with a new outer dimension.
  static Value stack(const std::vector<Value>& rows);

  Scalar tag() const { return tag_; }
  const std::vector<int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  bool is_scalar() const { return shape_.empty(); }
  int64_t count() const;

  bool is_float() const { return scalar_is_float(tag_); }

  // Scalar accessors (require rank 0).
  int64_t as_int() const;
  double as_float() const;
  bool as_bool() const;

  // Flat element accessors.
  double fget(int64_t flat) const { return fdata_[static_cast<size_t>(flat)]; }
  int64_t iget(int64_t flat) const { return idata_[static_cast<size_t>(flat)]; }
  void fset(int64_t flat, double v) { fdata_[static_cast<size_t>(flat)] = v; }
  void iset(int64_t flat, int64_t v) { idata_[static_cast<size_t>(flat)] = v; }

  /// Copy of row `i` (drops the outer dimension).  Bounds-checked.
  Value row(int64_t i) const;

  /// Element / slice after indexing with `idxs` (partial indexing allowed).
  Value index(const std::vector<int64_t>& idxs) const;

  /// Permute dimensions (rearrange).
  Value rearrange(const std::vector<int>& perm) const;

  /// Write `v` (of row shape) into row `i` of this array.
  void set_row(int64_t i, const Value& v);

  /// Structural equality with elementwise float tolerance.
  bool approx_equal(const Value& o, double tol = 1e-5) const;

  std::string str() const;

 private:
  Scalar tag_ = Scalar::I64;
  std::vector<int64_t> shape_;
  std::vector<double> fdata_;
  std::vector<int64_t> idata_;

  size_t flat_size() const;
};

/// Variable environment for the interpreter.
using Env = std::map<std::string, Value>;

/// Collection of results of a multi-result expression.
using Values = std::vector<Value>;

}  // namespace incflat
