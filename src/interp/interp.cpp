#include "src/interp/interp.h"

#include <cmath>
#include <functional>

#include "src/support/error.h"

namespace incflat {

namespace {

Value bin_scalar(const std::string& op, const Value& a, const Value& b) {
  const Scalar tag = a.tag();
  if (scalar_is_float(tag)) {
    const double x = a.as_float(), y = b.as_float();
    if (op == "+") return Value::scalar_float(tag, x + y);
    if (op == "-") return Value::scalar_float(tag, x - y);
    if (op == "*") return Value::scalar_float(tag, x * y);
    if (op == "/") return Value::scalar_float(tag, x / y);
    if (op == "min") return Value::scalar_float(tag, std::min(x, y));
    if (op == "max") return Value::scalar_float(tag, std::max(x, y));
    if (op == "pow") return Value::scalar_float(tag, std::pow(x, y));
    if (op == "<") return Value::scalar_bool(x < y);
    if (op == "<=") return Value::scalar_bool(x <= y);
    if (op == "==") return Value::scalar_bool(x == y);
  } else if (tag == Scalar::Bool) {
    const bool x = a.as_bool(), y = b.as_bool();
    if (op == "&&") return Value::scalar_bool(x && y);
    if (op == "||") return Value::scalar_bool(x || y);
    if (op == "==") return Value::scalar_bool(x == y);
  } else {
    const int64_t x = a.as_int(), y = b.as_int();
    if (op == "+") return Value::scalar_int(tag, x + y);
    if (op == "-") return Value::scalar_int(tag, x - y);
    if (op == "*") return Value::scalar_int(tag, x * y);
    if (op == "/") {
      if (y == 0) throw EvalError("integer division by zero");
      return Value::scalar_int(tag, x / y);
    }
    if (op == "%") {
      if (y == 0) throw EvalError("integer modulo by zero");
      return Value::scalar_int(tag, x % y);
    }
    if (op == "min") return Value::scalar_int(tag, std::min(x, y));
    if (op == "max") return Value::scalar_int(tag, std::max(x, y));
    if (op == "pow") {
      int64_t r = 1;
      for (int64_t k = 0; k < y; ++k) r *= x;
      return Value::scalar_int(tag, r);
    }
    if (op == "<") return Value::scalar_bool(x < y);
    if (op == "<=") return Value::scalar_bool(x <= y);
    if (op == "==") return Value::scalar_bool(x == y);
  }
  throw EvalError("bad binop '" + op + "' on " +
                  std::string(scalar_name(tag)));
}

Value un_scalar(const std::string& op, const Value& a) {
  const Scalar tag = a.tag();
  if (op == "!") return Value::scalar_bool(!a.as_bool());
  if (op == "i2f") return Value::scalar_float(Scalar::F32, static_cast<double>(a.as_int()));
  if (op == "i2f64") return Value::scalar_float(Scalar::F64, static_cast<double>(a.as_int()));
  if (op == "f2i") return Value::scalar_int(Scalar::I64, static_cast<int64_t>(a.as_float()));
  if (scalar_is_float(tag)) {
    const double x = a.as_float();
    if (op == "exp") return Value::scalar_float(tag, std::exp(x));
    if (op == "log") return Value::scalar_float(tag, std::log(x));
    if (op == "sqrt") return Value::scalar_float(tag, std::sqrt(x));
    if (op == "abs") return Value::scalar_float(tag, std::fabs(x));
    if (op == "neg") return Value::scalar_float(tag, -x);
  } else {
    const int64_t x = a.as_int();
    if (op == "abs") return Value::scalar_int(tag, std::llabs(x));
    if (op == "neg") return Value::scalar_int(tag, -x);
  }
  throw EvalError("bad unop '" + op + "'");
}

struct Evaluator {
  const InterpCtx& ctx;

  Value eval1(const ExprP& e, const Env& env) {
    Values vs = eval_multi(e, env);
    if (vs.size() != 1) throw EvalError("expected single result");
    return std::move(vs[0]);
  }

  Values eval_list1(const std::vector<ExprP>& es, const Env& env) {
    Values out;
    out.reserve(es.size());
    for (const auto& e : es) out.push_back(eval1(e, env));
    return out;
  }

  /// Apply a lambda to argument values.
  Values apply(const Lambda& f, const Values& args, const Env& env) {
    if (f.params.size() != args.size()) {
      throw EvalError("lambda arity mismatch at runtime");
    }
    Env env2 = env;
    for (size_t i = 0; i < args.size(); ++i) env2[f.params[i].name] = args[i];
    return eval_multi(f.body, env2);
  }

  Values eval_multi(const ExprP& e, const Env& env) {
    if (!e) throw EvalError("null expression");

    if (auto* v = e->as<VarE>()) {
      auto it = env.find(v->name);
      if (it == env.end()) throw EvalError("unbound variable " + v->name);
      return {it->second};
    }
    if (auto* c = e->as<ConstE>()) {
      if (scalar_is_float(c->tag)) return {Value::scalar_float(c->tag, c->f)};
      return {Value::scalar_int(c->tag, c->i)};
    }
    if (auto* b = e->as<BinOpE>()) {
      return {bin_scalar(b->op, eval1(b->lhs, env), eval1(b->rhs, env))};
    }
    if (auto* u = e->as<UnOpE>()) {
      return {un_scalar(u->op, eval1(u->e, env))};
    }
    if (auto* i = e->as<IfE>()) {
      return eval_multi(eval1(i->cond, env).as_bool() ? i->then_e : i->else_e,
                        env);
    }
    if (auto* l = e->as<LetE>()) {
      Values rhs = eval_multi(l->rhs, env);
      if (rhs.size() != l->vars.size()) {
        throw EvalError("let arity mismatch at runtime");
      }
      Env env2 = env;
      for (size_t k = 0; k < rhs.size(); ++k) {
        env2[l->vars[k]] = std::move(rhs[k]);
      }
      return eval_multi(l->body, env2);
    }
    if (auto* lp = e->as<LoopE>()) {
      Values state = eval_list1(lp->inits, env);
      const int64_t n = eval1(lp->count, env).as_int();
      for (int64_t it = 0; it < n; ++it) {
        Env env2 = env;
        for (size_t k = 0; k < lp->params.size(); ++k) {
          env2[lp->params[k]] = state[k];
        }
        env2[lp->ivar] = Value::i64(it);
        state = eval_multi(lp->body, env2);
        if (state.size() != lp->params.size()) {
          throw EvalError("loop body arity mismatch");
        }
      }
      return state;
    }
    if (auto* m = e->as<MapE>()) {
      Values arrays = eval_list1(m->arrays, env);
      const int64_t n = arrays.at(0).shape().at(0);
      std::vector<Values> per_iter;
      per_iter.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        Values args;
        for (const auto& a : arrays) args.push_back(a.row(i));
        per_iter.push_back(apply(m->f, args, env));
      }
      return stack_results(per_iter, m->f.params.size() ? e : e);
    }
    if (auto* r = e->as<ReduceE>()) {
      Values arrays = eval_list1(r->arrays, env);
      Values acc = eval_list1(r->neutral, env);
      const int64_t n = arrays.at(0).shape().at(0);
      for (int64_t i = 0; i < n; ++i) {
        Values args = acc;
        for (const auto& a : arrays) args.push_back(a.row(i));
        acc = apply(r->op, args, env);
      }
      return acc;
    }
    if (auto* s = e->as<ScanE>()) {
      Values arrays = eval_list1(s->arrays, env);
      Values acc = eval_list1(s->neutral, env);
      const int64_t n = arrays.at(0).shape().at(0);
      std::vector<Values> out;
      for (int64_t i = 0; i < n; ++i) {
        Values args = acc;
        for (const auto& a : arrays) args.push_back(a.row(i));
        acc = apply(s->op, args, env);
        out.push_back(acc);
      }
      return stack_results(out, e);
    }
    if (auto* rm = e->as<RedomapE>()) {
      Values arrays = eval_list1(rm->arrays, env);
      Values acc = eval_list1(rm->neutral, env);
      const int64_t n = arrays.at(0).shape().at(0);
      for (int64_t i = 0; i < n; ++i) {
        Values elem_args;
        for (const auto& a : arrays) elem_args.push_back(a.row(i));
        Values mapped = apply(rm->mapf, elem_args, env);
        Values args = acc;
        args.insert(args.end(), mapped.begin(), mapped.end());
        acc = apply(rm->red, args, env);
      }
      return acc;
    }
    if (auto* sm = e->as<ScanomapE>()) {
      Values arrays = eval_list1(sm->arrays, env);
      Values acc = eval_list1(sm->neutral, env);
      const int64_t n = arrays.at(0).shape().at(0);
      std::vector<Values> out;
      for (int64_t i = 0; i < n; ++i) {
        Values elem_args;
        for (const auto& a : arrays) elem_args.push_back(a.row(i));
        Values mapped = apply(sm->mapf, elem_args, env);
        Values args = acc;
        args.insert(args.end(), mapped.begin(), mapped.end());
        acc = apply(sm->red, args, env);
        out.push_back(acc);
      }
      return stack_results(out, e);
    }
    if (auto* rp = e->as<ReplicateE>()) {
      Value elem = eval1(rp->elem, env);
      const int64_t n = rp->count.eval(ctx.sizes);
      std::vector<Value> rows(static_cast<size_t>(n), elem);
      return {Value::stack(rows)};
    }
    if (auto* ra = e->as<RearrangeE>()) {
      return {eval1(ra->e, env).rearrange(ra->perm)};
    }
    if (auto* io = e->as<IotaE>()) {
      const int64_t n = io->count.eval(ctx.sizes);
      Value out = Value::zeros(Scalar::I64, {n});
      for (int64_t i = 0; i < n; ++i) out.iset(i, i);
      return {out};
    }
    if (auto* ix = e->as<IndexE>()) {
      Value arr = eval1(ix->arr, env);
      std::vector<int64_t> idxs;
      for (const auto& i : ix->idxs) idxs.push_back(eval1(i, env).as_int());
      return {arr.index(idxs)};
    }
    if (auto* t = e->as<TupleE>()) {
      Values out;
      for (const auto& x : t->elems) {
        Values vs = eval_multi(x, env);
        out.insert(out.end(), vs.begin(), vs.end());
      }
      return out;
    }
    if (auto* so = e->as<SegOpE>()) {
      return eval_segop(*so, env);
    }
    if (auto* tc = e->as<ThresholdCmpE>()) {
      const int64_t par = tc->par.eval(ctx.sizes);
      const bool fits = tc->fit.alts.empty() ||
                        tc->fit.eval(ctx.sizes) <= ctx.max_group_size;
      return {Value::scalar_bool(par >= ctx.thresholds.get(tc->threshold) &&
                                 fits)};
    }
    throw EvalError("interp: unhandled node");
  }

  // Stack the per-iteration multi-results into per-result arrays.
  Values stack_results(const std::vector<Values>& per_iter, const ExprP&) {
    if (per_iter.empty()) throw EvalError("SOAC over empty array");
    const size_t k = per_iter[0].size();
    Values out;
    for (size_t r = 0; r < k; ++r) {
      std::vector<Value> rows;
      rows.reserve(per_iter.size());
      for (const auto& vs : per_iter) rows.push_back(vs[r]);
      out.push_back(Value::stack(rows));
    }
    return out;
  }

  // Execute a seg-op as nested loops over its space.
  Values eval_segop(const SegOpE& so, const Env& env) {
    // Recursive walk over space levels; at the innermost level run map /
    // redomap / scanomap semantics along that dimension.
    std::function<Values(size_t, const Env&)> run_level =
        [&](size_t lvl, const Env& env2) -> Values {
      const SegBind& bind = so.space[lvl];
      const bool innermost = lvl + 1 == so.space.size();
      // Fetch the arrays bound at this level.
      Values arrays;
      for (const auto& a : bind.arrays) {
        auto it = env2.find(a);
        if (it == env2.end()) throw EvalError("seg-space array unbound: " + a);
        arrays.push_back(it->second);
      }
      const int64_t n = bind.dim.eval(ctx.sizes);
      if (!arrays.empty() && arrays[0].shape().at(0) != n) {
        throw EvalError("seg-space dim mismatch at runtime");
      }
      if (!innermost) {
        std::vector<Values> per_iter;
        for (int64_t i = 0; i < n; ++i) {
          Env env3 = env2;
          for (size_t k = 0; k < bind.params.size(); ++k) {
            env3[bind.params[k]] = arrays[k].row(i);
          }
          per_iter.push_back(run_level(lvl + 1, env3));
        }
        return stack_results(per_iter, nullptr);
      }
      // Innermost level: apply op semantics along this dimension.
      if (so.op == SegOpE::Op::Map) {
        std::vector<Values> per_iter;
        for (int64_t i = 0; i < n; ++i) {
          Env env3 = env2;
          for (size_t k = 0; k < bind.params.size(); ++k) {
            env3[bind.params[k]] = arrays[k].row(i);
          }
          per_iter.push_back(eval_multi(so.body, env3));
        }
        return stack_results(per_iter, nullptr);
      }
      // Red / Scan: fold the body results with the combine operator.
      Values acc = eval_list1(so.neutral, env);
      std::vector<Values> scanned;
      for (int64_t i = 0; i < n; ++i) {
        Env env3 = env2;
        for (size_t k = 0; k < bind.params.size(); ++k) {
          env3[bind.params[k]] = arrays[k].row(i);
        }
        Values mapped = eval_multi(so.body, env3);
        Values args = acc;
        args.insert(args.end(), mapped.begin(), mapped.end());
        acc = apply(so.combine, args, env3);
        if (so.op == SegOpE::Op::Scan) scanned.push_back(acc);
      }
      if (so.op == SegOpE::Op::Red) return acc;
      return stack_results(scanned, nullptr);
    };
    return run_level(0, env);
  }
};

}  // namespace

Values eval(const InterpCtx& ctx, const ExprP& e, const Env& env) {
  Evaluator ev{ctx};
  return ev.eval_multi(e, env);
}

void check_inputs(const InterpCtx& ctx, const Program& p,
                  const std::vector<Value>& inputs) {
  if (inputs.size() != p.inputs.size()) {
    throw EvalError("program " + p.name + " expects " +
                    std::to_string(p.inputs.size()) + " inputs, got " +
                    std::to_string(inputs.size()));
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Type& t = p.inputs[i].type;
    if (inputs[i].rank() != t.rank()) {
      throw EvalError("input " + p.inputs[i].name + " rank mismatch");
    }
    for (int d = 0; d < t.rank(); ++d) {
      const int64_t want = t.shape[static_cast<size_t>(d)].eval(ctx.sizes);
      if (inputs[i].shape()[static_cast<size_t>(d)] != want) {
        throw EvalError("input " + p.inputs[i].name + " dim " +
                        std::to_string(d) + " mismatch");
      }
    }
  }
}

Values run_program(const InterpCtx& ctx, const Program& p,
                   const std::vector<Value>& inputs) {
  check_inputs(ctx, p, inputs);
  Env env;
  for (size_t i = 0; i < inputs.size(); ++i) {
    env[p.inputs[i].name] = inputs[i];
  }
  for (const auto& [name, sz] : ctx.sizes) env[name] = Value::i64(sz);
  return eval(ctx, p.body, env);
}

}  // namespace incflat
