// Reference interpreter for both the source language (parallel SOACs with
// sequential semantics) and the target language (seg-ops executed as nested
// loops).  Every flattened program must compute exactly the same values as
// its source under this interpreter — the central semantics-preservation
// property of the paper, which we test extensively.
#pragma once

#include "src/interp/value.h"
#include "src/ir/expr.h"

namespace incflat {

/// Threshold parameter assignment used to resolve guard predicates
/// (ThresholdCmp).  Missing entries default to `default_threshold`.
struct ThresholdEnv {
  std::map<std::string, int64_t> values;
  int64_t default_threshold = 1 << 15;  // paper Sec 4.2 default: 2^15

  int64_t get(const std::string& name) const {
    auto it = values.find(name);
    return it == values.end() ? default_threshold : it->second;
  }
};

/// Interpreter context: dataset sizes (for Par(...) predicates and symbolic
/// dims), the threshold assignment, and the simulated device's workgroup
/// limit (used by intra-group guard feasibility checks; semantics do not
/// depend on it — every guard arm computes the same values).
struct InterpCtx {
  SizeEnv sizes;
  ThresholdEnv thresholds;
  int64_t max_group_size = int64_t{1} << 30;
};

/// Evaluate an expression; returns one Value per result.
Values eval(const InterpCtx& ctx, const ExprP& e, const Env& env);

/// Run a whole program on the given inputs (by input order).  Size variables
/// are derived from the SizeEnv and also bound as i64 scalars.
Values run_program(const InterpCtx& ctx, const Program& p,
                   const std::vector<Value>& inputs);

/// Validate that `inputs` conform to the program's declared input types
/// under ctx.sizes; throws EvalError otherwise.
void check_inputs(const InterpCtx& ctx, const Program& p,
                  const std::vector<Value>& inputs);

}  // namespace incflat
