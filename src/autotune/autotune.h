// Autotuner for threshold parameters (paper Sec. 4.2).
//
// The paper tunes with OpenTuner, defining one log-scaled integer parameter
// (LogIntegerParameter) per threshold and a cost function summing runtimes
// over user-provided training datasets.  This module reimplements that
// design: an ensemble stochastic search (random sampling + log-scale hill
// climbing from the incumbent) over power-of-two threshold values, with the
// paper's branching-tree deduplication — assignments that select the same
// code version on every training dataset share one (simulated) measurement.
//
// Cost evaluation goes through the plan layer (src/plan/): the program is
// lowered once into a KernelPlan decision tree, each training dataset gets
// a PlanDatasetCache (warmed concurrently on a worker pool), and from then
// on every candidate assignment costs one tree descent instead of an IR
// walk.  Dedup keys are guard-path bitsets read off the same descent.  The
// legacy IR-walking path is kept behind TunerOptions::use_plan as a debug
// oracle (and as the automatic fallback for programs outside the plan
// builder's fragment).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/flatten/thresholds.h"
#include "src/gpusim/cost.h"
#include "src/gpusim/device.h"
#include "src/interp/interp.h"
#include "src/profile/profile.h"

namespace incflat {

/// One training dataset: a size environment and a weight in the cost
/// function (the paper uses the unweighted sum; weights allow the "user
/// indicates which workloads matter" extension discussed in Sec. 4.2).
struct TuningDataset {
  std::string name;
  SizeEnv sizes;
  double weight = 1.0;
};

struct TunerOptions {
  int max_trials = 400;        // parameter assignments attempted
  uint64_t seed = 0xf00dcafe;  // deterministic search
  int log2_min = 0;            // thresholds range over [2^min, 2^max]
  int log2_max = 31;
  int64_t default_threshold = int64_t{1} << 15;  // paper default

  /// Evaluate candidates against the compile-once kernel plan (fast path).
  /// false = price every candidate with the legacy IR walker; kept as a
  /// debug oracle — results are bit-identical either way.
  bool use_plan = true;

  /// Worker threads for per-dataset cache warming and exhaustive candidate
  /// batches; <= 0 picks a small default from hardware_concurrency.
  int workers = 0;

  // --- robustness (fault-injected measurements; all off by default, in
  // --- which case the search is bit-identical to previous releases) ---

  /// Relative amplitude of multiplicative measurement noise: each single
  /// measurement is the true cost scaled by a uniform factor in
  /// [1-noise, 1+noise] (FaultPlan::noise_factor's distribution).
  double noise = 0;
  /// Probability an individual measurement fails outright (a crashed or
  /// lost run).  Failed measurements are discarded; a candidate whose every
  /// re-measurement failed is marked infeasible, never adopted.
  double failure_rate = 0;
  /// Seed of the measurement stream (noise + failure draws).
  uint64_t measure_seed = 0x5eedf417;
  /// Median-of-k re-measurement when noise or failures are enabled: each
  /// evaluation draws k measurements and keeps the median of the ones that
  /// survived.  Ignored (single exact measurement) when both are zero.
  int measure_k = 5;
  /// A candidate whose measured cost exceeds this is marked infeasible
  /// rather than aborting the search; 0 disables.  (Simulated microseconds
  /// — the per-candidate timeout of a real measurement harness.)
  double candidate_timeout_us = 0;
  /// Wall-clock budget in milliseconds; when exceeded the search stops
  /// gracefully and returns the incumbent (early_stopped in the report).
  /// 0 = unlimited.  The only nondeterministic knob — leave at 0 for
  /// reproducible searches.
  double budget_ms = 0;
  /// Crash-safe journal file: every evaluation is appended atomically so an
  /// interrupted search resumes (`resume`) to a bit-identical report.
  /// Empty = no journal.
  std::string journal;
  /// Resume from `journal` (which must exist and match this search's
  /// configuration) instead of starting fresh.
  bool resume = false;

  // --- profile seeding (off by default: search identical to previous
  // --- releases) ---

  /// Execution profile (src/profile/) seeding the stochastic search:
  /// threshold parameters whose guards the profiled workload never reached
  /// are pruned from the search space (cold code versions keep the
  /// default), and the log2 value range is clamped so it still straddles
  /// every observed Par value — values beyond the largest observed Par all
  /// behave as "never taken", so searching above that boundary is wasted
  /// trials.  Not owned; must outlive the call.  Ignored by
  /// exhaustive_tune (the oracle stays exact).
  const profile::ExecProfile* profile = nullptr;
};

struct TuningReport {
  ThresholdEnv best;          // tuned assignment (and default for the rest)
  double best_cost_us = 0;    // sum of weighted runtimes under `best`
  double default_cost_us = 0; // cost of the untuned (2^15) assignment
  int trials = 0;             // assignments attempted
  int evaluations = 0;        // cost-model evaluations actually performed
  int dedup_hits = 0;         // assignments resolved from the branching tree
  bool used_plan = false;     // evaluated via KernelPlan (not the IR walker)
  int infeasible = 0;         // evaluations timed out / failed every retry
  int journal_replayed = 0;   // evaluations answered from a resumed journal
  bool early_stopped = false; // wall-clock budget exhausted; best = incumbent
  bool profile_seeded = false; // search was seeded from an execution profile
  int cold_pruned = 0;        // thresholds pruned as cold (never reached)
};

/// Tune `p`'s thresholds for `dev` over the training datasets.
TuningReport autotune(const DeviceProfile& dev, const Program& p,
                      const ThresholdRegistry& reg,
                      const std::vector<TuningDataset>& datasets,
                      const TunerOptions& opts = {});

/// Exhaustive search over the *distinct dynamic behaviours*: each threshold
/// takes values from {1, 2^62} ∪ {per-dataset Par values}, so every
/// reachable combination of code-version selections is visited.  Used as
/// the oracle in tests and the "AIF with unlimited tuning budget" bound.
TuningReport exhaustive_tune(const DeviceProfile& dev, const Program& p,
                             const ThresholdRegistry& reg,
                             const std::vector<TuningDataset>& datasets,
                             int64_t default_threshold = int64_t{1} << 15,
                             const TunerOptions& opts = {});

/// The tuner's cost function: weighted sum over datasets of simulated
/// runtime under the given assignment (always the legacy IR walker; the
/// plan-based equivalent is plan_cost over per-dataset caches).
double tuning_cost(const DeviceProfile& dev, const Program& p,
                   const std::vector<TuningDataset>& datasets,
                   const ThresholdEnv& thresholds);

}  // namespace incflat
