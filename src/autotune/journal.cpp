#include "src/autotune/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/support/error.h"

namespace incflat {

namespace {

constexpr const char* kMagic = "# incflat tuning journal v1";

std::string hex(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

bool parse_hex(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    int d = 0;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

std::string meta_line(const JournalMeta& m) {
  std::ostringstream os;
  os << "meta program=" << m.program << " device=" << m.device
     << " seed=" << hex(m.search_seed) << " trials=" << m.max_trials
     << " mseed=" << hex(m.measure_seed) << " k=" << m.measure_k
     << " noise=" << hex(m.noise_bits);
  return os.str();
}

/// Parse "meta key=value ..." back into a JournalMeta; false on any
/// malformed field (a corrupt header refuses the resume).
bool parse_meta(const std::string& line, JournalMeta* m) {
  std::istringstream is(line);
  std::string tok;
  if (!(is >> tok) || tok != "meta") return false;
  while (is >> tok) {
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    uint64_t u = 0;
    if (key == "program") {
      m->program = val;
    } else if (key == "device") {
      m->device = val;
    } else if (key == "seed" && parse_hex(val, &u)) {
      m->search_seed = u;
    } else if (key == "trials") {
      try {
        m->max_trials = std::stoi(val);
      } catch (const std::exception&) {
        return false;
      }
    } else if (key == "mseed" && parse_hex(val, &u)) {
      m->measure_seed = u;
    } else if (key == "k") {
      try {
        m->measure_k = std::stoi(val);
      } catch (const std::exception&) {
        return false;
      }
    } else if (key == "noise" && parse_hex(val, &u)) {
      m->noise_bits = u;
    } else {
      return false;
    }
  }
  return true;
}

/// One full write(2) of `line`.  The fd is O_APPEND, so as long as the line
/// goes out in a single call the kernel serialises it against every other
/// appender; a short write (out of space) is a hard error — retrying the
/// tail would interleave with other writers, the exact tear this layer
/// exists to prevent.
void write_line(int fd, const std::string& line, const std::string& path) {
  for (;;) {
    const ssize_t w = ::write(fd, line.data(), line.size());
    if (w == static_cast<ssize_t>(line.size())) return;
    if (w < 0 && errno == EINTR) continue;
    throw IoError("tuning journal write failed: " + path);
  }
}

}  // namespace

bool JournalMeta::operator==(const JournalMeta& o) const {
  return program == o.program && device == o.device &&
         search_seed == o.search_seed && max_trials == o.max_trials &&
         measure_seed == o.measure_seed && measure_k == o.measure_k &&
         noise_bits == o.noise_bits;
}

uint64_t journal_hash(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

TuneJournal TuneJournal::open(const std::string& path,
                              const JournalMeta& meta, bool resume,
                              std::vector<JournalEntry>* replay) {
  if (replay) replay->clear();
  if (resume) {
    std::ifstream in(path);
    if (!in) {
      throw IoError("cannot read tuning journal: " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    // A crash can leave a partial final line (no terminating newline):
    // drop the fragment, it will simply be re-measured and re-appended.
    const size_t last_nl = text.find_last_of('\n');
    text = last_nl == std::string::npos ? "" : text.substr(0, last_nl + 1);
    std::istringstream is(text);
    std::string line;
    bool saw_magic = false, saw_meta = false;
    while (std::getline(is, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!saw_magic) {
        if (line != kMagic) {
          throw IoError("not a tuning journal: " + path);
        }
        saw_magic = true;
        continue;
      }
      if (!saw_meta) {
        JournalMeta got;
        if (!parse_meta(line, &got)) {
          throw IoError("tuning journal has a corrupt header: " + path);
        }
        if (!(got == meta)) {
          throw IoError(
              "tuning journal was recorded for a different search "
              "(program/device/seed/options mismatch): " + path);
        }
        saw_meta = true;
        continue;
      }
      std::istringstream ls(line);
      std::string tag, key_s, cost_s;
      JournalEntry e;
      if (!(ls >> tag >> key_s >> cost_s) || tag != "E" ||
          !parse_hex(key_s, &e.key_hash) || !parse_hex(cost_s, &e.cost_bits)) {
        // A torn write that still got its newline out: stop replaying here;
        // everything from this point is re-measured.
        break;
      }
      if (replay) replay->push_back(e);
    }
    if (!saw_magic || !saw_meta) {
      throw IoError("tuning journal is missing its header: " + path);
    }
  }

  TuneJournal j;
  j.path_ = path;
  const int flags =
      O_WRONLY | O_CREAT | O_APPEND | (resume ? 0 : O_TRUNC);
  j.fd_ = ::open(path.c_str(), flags, 0644);
  if (j.fd_ < 0) {
    throw IoError("cannot write tuning journal: " + path);
  }
  if (!resume) {
    const std::string header =
        std::string(kMagic) + "\n" + meta_line(meta) + "\n";
    write_line(j.fd_, header, path);
  }
  return j;
}

TuneJournal::TuneJournal(TuneJournal&& o) noexcept
    : path_(std::move(o.path_)), fd_(o.fd_) {
  o.fd_ = -1;
}

TuneJournal& TuneJournal::operator=(TuneJournal&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(o.path_);
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

TuneJournal::~TuneJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void TuneJournal::append(const JournalEntry& e) {
  std::ostringstream os;
  os << "E " << hex(e.key_hash) << " " << hex(e.cost_bits) << "\n";
  write_line(fd_, os.str(), path_);
}

}  // namespace incflat
