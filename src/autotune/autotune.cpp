#include "src/autotune/autotune.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "src/support/error.h"
#include "src/support/rng.h"

namespace incflat {

namespace {

/// Dedup key: the concatenated path signatures of all datasets.  Two
/// assignments with equal keys drive every dataset through the same code
/// versions, hence cost the same (paper Sec. 4.2).
std::string signature_key(const ThresholdRegistry& reg,
                          const std::vector<TuningDataset>& datasets,
                          const std::map<std::string, int64_t>& assignment,
                          int64_t default_value, int64_t max_group) {
  std::string key;
  for (const auto& d : datasets) {
    for (bool b :
         reg.path_signature(d.sizes, assignment, default_value, max_group)) {
      key += b ? '1' : '0';
    }
    key += '|';
  }
  return key;
}

ThresholdEnv to_env(const std::map<std::string, int64_t>& assignment,
                    int64_t default_value) {
  ThresholdEnv env;
  env.values = assignment;
  env.default_threshold = default_value;
  return env;
}

struct Memoizer {
  const DeviceProfile& dev;
  const Program& p;
  const ThresholdRegistry& reg;
  const std::vector<TuningDataset>& datasets;
  int64_t default_value;
  std::map<std::string, double> cache;
  int evaluations = 0;
  int dedup_hits = 0;

  double cost(const std::map<std::string, int64_t>& assignment) {
    const std::string key = signature_key(reg, datasets, assignment,
                                          default_value, dev.max_group_size);
    auto it = cache.find(key);
    if (it != cache.end()) {
      ++dedup_hits;
      return it->second;
    }
    ++evaluations;
    const double c =
        tuning_cost(dev, p, datasets, to_env(assignment, default_value));
    cache.emplace(key, c);
    return c;
  }
};

}  // namespace

double tuning_cost(const DeviceProfile& dev, const Program& p,
                   const std::vector<TuningDataset>& datasets,
                   const ThresholdEnv& thresholds) {
  double total = 0;
  for (const auto& d : datasets) {
    total += d.weight * estimate_run(dev, p, d.sizes, thresholds).time_us;
  }
  return total;
}

TuningReport autotune(const DeviceProfile& dev, const Program& p,
                      const ThresholdRegistry& reg,
                      const std::vector<TuningDataset>& datasets,
                      const TunerOptions& opts) {
  TuningReport rep;
  Memoizer memo{dev, p, reg, datasets, opts.default_threshold, {}, 0, 0};

  // LogIntegerParameter view: the search works on exponents, so halving and
  // doubling a threshold are steps of equal magnitude.
  std::vector<std::string> names;
  for (const auto& ti : reg.all()) names.push_back(ti.name);

  std::map<std::string, int64_t> incumbent;  // empty = all defaults
  double best = memo.cost(incumbent);
  rep.default_cost_us = best;
  rep.trials = 1;

  if (!names.empty()) {
    Rng rng(opts.seed);
    auto random_assignment = [&] {
      std::map<std::string, int64_t> a;
      for (const auto& n : names) {
        a[n] = int64_t{1} << rng.uniform_int(opts.log2_min, opts.log2_max);
      }
      return a;
    };
    auto mutate = [&](std::map<std::string, int64_t> a) {
      const int n_mut =
          static_cast<int>(rng.uniform_int(1, std::max<size_t>(names.size() / 2, 1)));
      for (int k = 0; k < n_mut; ++k) {
        const auto& n = names[static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(names.size()) - 1))];
        int64_t cur = a.count(n) ? a[n] : opts.default_threshold;
        int exp = 0;
        while ((int64_t{1} << exp) < cur && exp < 62) ++exp;
        exp += static_cast<int>(rng.uniform_int(-4, 4));
        exp = std::clamp(exp, opts.log2_min, opts.log2_max);
        a[n] = int64_t{1} << exp;
      }
      return a;
    };

    for (int t = 1; t < opts.max_trials; ++t) {
      // Ensemble: half random exploration, half hill climbing on the
      // incumbent (OpenTuner's technique mixture, simplified).
      std::map<std::string, int64_t> cand =
          rng.flip(0.5) ? random_assignment() : mutate(incumbent);
      ++rep.trials;
      const double c = memo.cost(cand);
      if (c < best) {
        best = c;
        incumbent = std::move(cand);
      }
    }
  }

  rep.best = to_env(incumbent, opts.default_threshold);
  rep.best_cost_us = best;
  rep.evaluations = memo.evaluations;
  rep.dedup_hits = memo.dedup_hits;
  return rep;
}

TuningReport exhaustive_tune(const DeviceProfile& dev, const Program& p,
                             const ThresholdRegistry& reg,
                             const std::vector<TuningDataset>& datasets,
                             int64_t default_threshold) {
  TuningReport rep;
  Memoizer memo{dev, p, reg, datasets, default_threshold, {}, 0, 0};
  rep.default_cost_us = memo.cost({});

  // Candidate values per threshold: "always on", "always off", and every
  // boundary that separates the training datasets.
  std::vector<std::string> names;
  std::vector<std::vector<int64_t>> cands;
  for (const auto& ti : reg.all()) {
    std::set<int64_t> c{int64_t{1}, int64_t{1} << 62};
    for (const auto& d : datasets) {
      c.insert(ti.par.eval(d.sizes));
    }
    names.push_back(ti.name);
    cands.emplace_back(c.begin(), c.end());
  }

  std::map<std::string, int64_t> current, best_assign;
  double best = memo.cost({});
  std::function<void(size_t)> go = [&](size_t i) {
    if (i == names.size()) {
      ++rep.trials;
      const double c = memo.cost(current);
      if (c < best) {
        best = c;
        best_assign = current;
      }
      return;
    }
    for (int64_t v : cands[i]) {
      current[names[i]] = v;
      go(i + 1);
    }
    current.erase(names[i]);
  };
  go(0);

  rep.best = to_env(best_assign, default_threshold);
  rep.best_cost_us = best;
  rep.evaluations = memo.evaluations;
  rep.dedup_hits = memo.dedup_hits;
  return rep;
}

}  // namespace incflat
