#include "src/autotune/autotune.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "src/autotune/journal.h"
#include "src/plan/plan.h"
#include "src/support/error.h"
#include "src/support/pool.h"
#include "src/support/rng.h"
#include "src/support/trace.h"

namespace incflat {

namespace {

ThresholdEnv to_env(const std::map<std::string, int64_t>& assignment,
                    int64_t default_value) {
  ThresholdEnv env;
  env.values = assignment;
  env.default_threshold = default_value;
  return env;
}

// ---------------------------------------------------------------------------
// Fallible, noisy measurements with a crash-safe journal.
//
// When any robustness option is enabled, every memoizer cache miss routes
// through a MeasureSession: the true (simulated) cost is re-measured
// median-of-k under multiplicative noise, individual measurements can fail
// (discarded; all-k-failed marks the candidate infeasible), candidates
// beyond the per-candidate timeout are marked infeasible instead of
// aborting, and each final measured value is appended to the journal as a
// single flushed write.  A resumed search answers evaluations from the
// journal in order — advancing the measurement RNG by exactly the draws a
// live measurement consumes, so the continuation is bit-identical to an
// uninterrupted run.
// ---------------------------------------------------------------------------

struct Measurer {
  double noise = 0;
  double failure_rate = 0;
  bool active = false;
  int k = 1;
  Rng rng;

  explicit Measurer(const TunerOptions& opts)
      : noise(opts.noise),
        failure_rate(opts.failure_rate),
        active(opts.noise > 0 || opts.failure_rate > 0),
        k(active ? std::max(1, opts.measure_k) : 1),
        rng(opts.measure_seed) {}

  /// Median-of-k measurement of a candidate with true cost `t`.  Consumes
  /// exactly 2k draws (k failure tests + k noise factors) so replayed and
  /// live evaluations advance the stream identically.  All k failed ->
  /// +inf (infeasible).
  double measure(double t) {
    if (!active) return t;
    std::vector<double> ms;
    ms.reserve(static_cast<size_t>(k));
    for (int j = 0; j < k; ++j) {
      const double fail = rng.uniform();
      const double n = rng.uniform();
      if (fail < failure_rate) continue;
      ms.push_back(t * (1.0 + noise * (2.0 * n - 1.0)));
    }
    if (ms.empty()) return std::numeric_limits<double>::infinity();
    std::sort(ms.begin(), ms.end());
    const size_t m = ms.size();
    return m % 2 == 1 ? ms[m / 2] : 0.5 * (ms[m / 2 - 1] + ms[m / 2]);
  }

  /// Advance the stream as one measurement would, without measuring (used
  /// for journal-replayed and unpriceable evaluations).
  void skip_draws() {
    if (!active) return;
    for (int j = 0; j < 2 * k; ++j) rng.next();
  }
};

struct MeasureSession {
  Measurer meas;
  TuneJournal* journal = nullptr;
  std::vector<JournalEntry> replay;
  size_t replay_ix = 0;
  double timeout_us = 0;
  TuningReport* rep = nullptr;

  MeasureSession(const TunerOptions& opts, TuningReport* report)
      : meas(opts), timeout_us(opts.candidate_timeout_us), rep(report) {}

  /// Timed-out and failed-every-retry candidates get an infinite cost:
  /// counted infeasible, never adopted, never fatal.  The *journaled* value
  /// is post-finalize, so replayed evaluations count identically.
  double finalize(double c) {
    if (timeout_us > 0 && c > timeout_us) {
      c = std::numeric_limits<double>::infinity();
    }
    if (!(c < std::numeric_limits<double>::infinity())) ++rep->infeasible;
    return c;
  }

  /// Measure one evaluation: replay from the journal when entries remain,
  /// else measure live (a candidate whose pricing throws EvalError — e.g.
  /// unbound sizes — is infeasible, not fatal) and journal the result.
  double evaluate(uint64_t key_hash, const std::function<double()>& true_cost) {
    if (replay_ix < replay.size()) {
      const JournalEntry& e = replay[replay_ix];
      if (e.key_hash != key_hash) {
        throw IoError(
            "tuning journal is out of sync with the search (entry " +
            std::to_string(replay_ix) + " hash mismatch) — refusing resume");
      }
      ++replay_ix;
      meas.skip_draws();
      ++rep->journal_replayed;
      const double c = e.cost();
      if (!(c < std::numeric_limits<double>::infinity())) ++rep->infeasible;
      return c;
    }
    double c;
    try {
      c = meas.measure(true_cost());
    } catch (const EvalError&) {
      meas.skip_draws();
      c = std::numeric_limits<double>::infinity();
    }
    c = finalize(c);
    if (journal) journal->append(JournalEntry::of(key_hash, c));
    return c;
  }
};

uint64_t double_bits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Whether any robustness machinery is needed; when false, candidate costs
/// bypass the MeasureSession entirely and the search is bit-identical to
/// previous releases.
bool session_needed(const TunerOptions& opts) {
  return opts.noise > 0 || opts.failure_rate > 0 ||
         opts.candidate_timeout_us > 0 || !opts.journal.empty();
}

// ---------------------------------------------------------------------------
// Legacy evaluation: IR walk per candidate, string dedup keys from the
// threshold registry.  Kept as the debug oracle behind TunerOptions::use_plan
// and as the fallback for programs the plan builder cannot lower.
// ---------------------------------------------------------------------------

/// Dedup key: the concatenated path signatures of all datasets.  Two
/// assignments with equal keys drive every dataset through the same code
/// versions, hence cost the same (paper Sec. 4.2).
std::string signature_key(const ThresholdRegistry& reg,
                          const std::vector<TuningDataset>& datasets,
                          const std::map<std::string, int64_t>& assignment,
                          int64_t default_value, int64_t max_group) {
  std::string key;
  for (const auto& d : datasets) {
    for (bool b :
         reg.path_signature(d.sizes, assignment, default_value, max_group)) {
      key += b ? '1' : '0';
    }
    key += '|';
  }
  return key;
}

struct WalkMemoizer {
  const DeviceProfile& dev;
  const Program& p;
  const ThresholdRegistry& reg;
  const std::vector<TuningDataset>& datasets;
  int64_t default_value;
  MeasureSession* session = nullptr;
  std::map<std::string, double> cache;
  int evaluations = 0;
  int dedup_hits = 0;

  double cost(const std::map<std::string, int64_t>& assignment) {
    const std::string key = signature_key(reg, datasets, assignment,
                                          default_value, dev.max_group_size);
    auto it = cache.find(key);
    if (it != cache.end()) {
      ++dedup_hits;
      return it->second;
    }
    ++evaluations;
    const auto true_cost = [&] {
      return tuning_cost(dev, p, datasets, to_env(assignment, default_value));
    };
    const double c =
        session ? session->evaluate(journal_hash(key.data(), key.size()),
                                    true_cost)
                : true_cost();
    cache.emplace(key, c);
    return c;
  }
};

// ---------------------------------------------------------------------------
// Plan-based evaluation: the program is lowered once, each dataset's sizes
// are swept through the cost arena once, and every candidate afterwards is
// a decision-tree descent.  Dedup keys are the concatenated guard-path
// bitsets of all datasets, read off the same descent.
// ---------------------------------------------------------------------------

struct PlanEval {
  KernelPlan plan;
  std::vector<std::unique_ptr<PlanDatasetCache>> caches;
  const std::vector<TuningDataset>* datasets = nullptr;
  int64_t default_value = 0;

  bool ok() const { return !plan.legacy_fallback; }

  static PlanEval build(const DeviceProfile& dev, const Program& p,
                        const std::vector<TuningDataset>& datasets,
                        int64_t default_value, WorkerPool& pool) {
    trace::Span span("tune.plan_warm");
    PlanEval ev;
    ev.plan = build_kernel_plan(p);
    ev.datasets = &datasets;
    ev.default_value = default_value;
    if (!ev.plan.legacy_fallback) {
      // Warm the per-dataset caches concurrently: each is one independent
      // forward sweep over the arena plus kernel pricing.
      ev.caches.resize(datasets.size());
      pool.run(static_cast<int>(datasets.size()), [&](int i) {
        ev.caches[static_cast<size_t>(i)] = std::make_unique<PlanDatasetCache>(
            ev.plan, dev, datasets[static_cast<size_t>(i)].sizes);
      });
    }
    return ev;
  }

  /// Dedup key of an assignment across all datasets.
  std::vector<uint64_t> key(const ThresholdEnv& env) const {
    std::vector<uint64_t> k;
    for (const auto& c : caches) {
      const PathSig s = plan_signature(plan, *c, env);
      k.insert(k.end(), s.bits.begin(), s.bits.end());
    }
    return k;
  }

  /// Weighted-sum cost; the same accumulation order as tuning_cost, and
  /// plan_cost is bit-identical to estimate_run().time_us, so this equals
  /// the legacy cost exactly.
  double cost(const ThresholdEnv& env) const {
    double total = 0;
    for (size_t i = 0; i < caches.size(); ++i) {
      total += (*datasets)[i].weight * plan_cost(plan, *caches[i], env);
    }
    return total;
  }
};

struct PlanMemoizer {
  const PlanEval& ev;
  MeasureSession* session = nullptr;
  std::map<std::vector<uint64_t>, double> cache;
  int evaluations = 0;
  int dedup_hits = 0;

  double cost(const std::map<std::string, int64_t>& assignment) {
    const ThresholdEnv env = to_env(assignment, ev.default_value);
    std::vector<uint64_t> k = ev.key(env);
    auto it = cache.find(k);
    if (it != cache.end()) {
      ++dedup_hits;
      return it->second;
    }
    ++evaluations;
    const auto true_cost = [&] { return ev.cost(env); };
    const double c =
        session
            ? session->evaluate(
                  journal_hash(k.data(), k.size() * sizeof(uint64_t)),
                  true_cost)
            : true_cost();
    cache.emplace(std::move(k), c);
    return c;
  }
};

// ---------------------------------------------------------------------------
// Search (shared between both evaluation back ends).
// ---------------------------------------------------------------------------

template <class Memo>
void stochastic_search(Memo& memo, const std::vector<std::string>& names,
                       const TunerOptions& opts, TuningReport& rep) {
  // The wall-clock budget is checked between trials: the search never
  // aborts mid-measurement, it stops gracefully and keeps the incumbent.
  const auto start = std::chrono::steady_clock::now();
  const auto over_budget = [&] {
    if (opts.budget_ms <= 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    return static_cast<double>(elapsed.count()) / 1000.0 > opts.budget_ms;
  };

  std::map<std::string, int64_t> incumbent;  // empty = all defaults
  double best = memo.cost(incumbent);
  rep.default_cost_us = best;
  rep.trials = 1;

  if (!names.empty()) {
    Rng rng(opts.seed);
    auto random_assignment = [&] {
      std::map<std::string, int64_t> a;
      for (const auto& n : names) {
        a[n] = int64_t{1} << rng.uniform_int(opts.log2_min, opts.log2_max);
      }
      return a;
    };
    auto mutate = [&](std::map<std::string, int64_t> a) {
      const int n_mut = static_cast<int>(
          rng.uniform_int(1, std::max<size_t>(names.size() / 2, 1)));
      for (int k = 0; k < n_mut; ++k) {
        const auto& n = names[static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(names.size()) - 1))];
        int64_t cur = a.count(n) ? a[n] : opts.default_threshold;
        int exp = 0;
        while ((int64_t{1} << exp) < cur && exp < 62) ++exp;
        exp += static_cast<int>(rng.uniform_int(-4, 4));
        exp = std::clamp(exp, opts.log2_min, opts.log2_max);
        a[n] = int64_t{1} << exp;
      }
      return a;
    };

    for (int t = 1; t < opts.max_trials; ++t) {
      if (over_budget()) {
        rep.early_stopped = true;
        break;
      }
      // Ensemble: half random exploration, half hill climbing on the
      // incumbent (OpenTuner's technique mixture, simplified).
      std::map<std::string, int64_t> cand =
          rng.flip(0.5) ? random_assignment() : mutate(incumbent);
      ++rep.trials;
      const double c = memo.cost(cand);
      if (c < best) {
        best = c;
        incumbent = std::move(cand);
      }
    }
  }

  rep.best = to_env(incumbent, opts.default_threshold);
  rep.best_cost_us = best;
  rep.evaluations = memo.evaluations;
  rep.dedup_hits = memo.dedup_hits;
}

/// All full assignments of `cands` values to `names`, in the legacy
/// recursive enumeration order (innermost name varies fastest).
std::vector<std::map<std::string, int64_t>> enumerate_assignments(
    const std::vector<std::string>& names,
    const std::vector<std::vector<int64_t>>& cands) {
  std::vector<std::map<std::string, int64_t>> all;
  std::map<std::string, int64_t> current;
  std::function<void(size_t)> go = [&](size_t i) {
    if (i == names.size()) {
      all.push_back(current);
      return;
    }
    for (int64_t v : cands[i]) {
      current[names[i]] = v;
      go(i + 1);
    }
    current.erase(names[i]);
  };
  go(0);
  return all;
}

/// One-shot trace counters for a finished search: the hot candidate loop
/// stays uninstrumented, the tallies it already keeps in the report are
/// published at the end.
void trace_report(const TuningReport& rep) {
  if (!trace::enabled()) return;
  trace::count("tuner.candidates", rep.trials);
  trace::count("tuner.evaluations", rep.evaluations);
  trace::count("tuner.dedup_hits", rep.dedup_hits);
  if (rep.used_plan) trace::count("tuner.plan_searches");
}

}  // namespace

double tuning_cost(const DeviceProfile& dev, const Program& p,
                   const std::vector<TuningDataset>& datasets,
                   const ThresholdEnv& thresholds) {
  double total = 0;
  for (const auto& d : datasets) {
    total += d.weight * estimate_run(dev, p, d.sizes, thresholds).time_us;
  }
  return total;
}

TuningReport autotune(const DeviceProfile& dev, const Program& p,
                      const ThresholdRegistry& reg,
                      const std::vector<TuningDataset>& datasets,
                      const TunerOptions& opts) {
  trace::Span span("tune.stochastic");
  TuningReport rep;
  std::vector<std::string> names;
  for (const auto& ti : reg.all()) names.push_back(ti.name);

  // Profile seeding: drop cold thresholds from the search space and clamp
  // the value range to straddle the observed Par values.
  TunerOptions eff = opts;
  if (opts.profile) {
    const profile::ExecProfile& prof = *opts.profile;
    std::map<std::string, bool> reached;  // per threshold name: any guard hot
    int64_t par_hi = 0;
    bool any_par = false;
    for (const profile::GuardProfile& g : prof.guards) {
      auto [it, fresh] = reached.emplace(g.threshold, g.reached());
      if (!fresh) it->second = it->second || g.reached();
      if (g.par_seen) {
        any_par = true;
        par_hi = std::max(par_hi, g.par_hi);
      }
    }
    std::vector<std::string> kept;
    for (const std::string& n : names) {
      const auto it = reached.find(n);
      if (it != reached.end() && !it->second) {
        // Every guard over this threshold went unvisited: its code versions
        // are cold for this workload, tuning the value cannot matter.
        ++rep.cold_pruned;
        continue;
      }
      kept.push_back(n);
    }
    names = std::move(kept);
    if (any_par) {
      // Smallest exponent with 2^e > par_hi: keeps one "always off" value
      // in range, everything above it is redundant.
      int e = 0;
      while ((int64_t{1} << e) <= par_hi && e < 62) ++e;
      eff.log2_max = std::max(eff.log2_min, std::min(eff.log2_max, e));
    }
    rep.profile_seeded = true;
    trace::count("tuner.cold_pruned", rep.cold_pruned);
    if (trace::enabled()) trace::count("tuner.profile_seeded");
  }

  // Robust-measurement session (noise, failures, timeout, journal).  Held
  // outside both back ends so a resumed journal replays identically
  // whichever evaluation path the program selects.
  std::unique_ptr<MeasureSession> session;
  std::unique_ptr<TuneJournal> journal;
  if (session_needed(opts)) {
    session = std::make_unique<MeasureSession>(opts, &rep);
    if (!opts.journal.empty()) {
      JournalMeta meta;
      meta.program = p.name;
      meta.device = dev.name;
      meta.search_seed = opts.seed;
      meta.max_trials = opts.max_trials;
      meta.measure_seed = opts.measure_seed;
      meta.measure_k = opts.measure_k;
      meta.noise_bits = double_bits(opts.noise);
      journal = std::make_unique<TuneJournal>(
          TuneJournal::open(opts.journal, meta, opts.resume,
                            &session->replay));
      session->journal = journal.get();
    }
  }

  if (opts.use_plan) {
    WorkerPool pool(opts.workers);
    PlanEval ev =
        PlanEval::build(dev, p, datasets, opts.default_threshold, pool);
    if (ev.ok()) {
      PlanMemoizer memo{ev, session.get(), {}, 0, 0};
      stochastic_search(memo, names, eff, rep);
      rep.used_plan = true;
      trace_report(rep);
      return rep;
    }
  }
  WalkMemoizer memo{dev,  p,           reg, datasets, opts.default_threshold,
                    session.get(), {}, 0,   0};
  stochastic_search(memo, names, eff, rep);
  trace_report(rep);
  return rep;
}

TuningReport exhaustive_tune(const DeviceProfile& dev, const Program& p,
                             const ThresholdRegistry& reg,
                             const std::vector<TuningDataset>& datasets,
                             int64_t default_threshold,
                             const TunerOptions& opts) {
  trace::Span span("tune.exhaustive");
  TuningReport rep;

  // Candidate values per threshold: "always on", "always off", and every
  // boundary that separates the training datasets.
  std::vector<std::string> names;
  std::vector<std::vector<int64_t>> cands;
  for (const auto& ti : reg.all()) {
    std::set<int64_t> c{int64_t{1}, int64_t{1} << 62};
    for (const auto& d : datasets) {
      c.insert(ti.par.eval(d.sizes));
    }
    names.push_back(ti.name);
    cands.emplace_back(c.begin(), c.end());
  }
  const std::vector<std::map<std::string, int64_t>> all =
      enumerate_assignments(names, cands);

  if (opts.use_plan) {
    WorkerPool pool(opts.workers);
    PlanEval ev = PlanEval::build(dev, p, datasets, default_threshold, pool);
    if (ev.ok()) {
      rep.used_plan = true;
      const int n = static_cast<int>(all.size());

      // Phase 1: dedup keys for every candidate, concurrently.
      std::vector<ThresholdEnv> envs(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        envs[static_cast<size_t>(i)] =
            to_env(all[static_cast<size_t>(i)], default_threshold);
      }
      const ThresholdEnv default_env = to_env({}, default_threshold);
      const std::vector<uint64_t> default_key = ev.key(default_env);
      std::vector<std::vector<uint64_t>> keys(static_cast<size_t>(n));
      pool.run(n, [&](int i) {
        keys[static_cast<size_t>(i)] = ev.key(envs[static_cast<size_t>(i)]);
      });

      // Phase 2: one representative per distinct key (-1 = default env).
      std::map<std::vector<uint64_t>, int> rep_ix;
      rep_ix.emplace(default_key, -1);
      for (int i = 0; i < n; ++i) {
        rep_ix.emplace(keys[static_cast<size_t>(i)], i);
      }

      // Phase 3: price only the representatives, concurrently.
      std::vector<std::pair<const std::vector<uint64_t>*, int>> uniq;
      uniq.reserve(rep_ix.size());
      for (const auto& [k, ix] : rep_ix) uniq.emplace_back(&k, ix);
      std::vector<double> ucost(uniq.size());
      pool.run(static_cast<int>(uniq.size()), [&](int u) {
        const int ix = uniq[static_cast<size_t>(u)].second;
        ucost[static_cast<size_t>(u)] =
            ev.cost(ix < 0 ? default_env : envs[static_cast<size_t>(ix)]);
      });
      std::map<std::vector<uint64_t>, double> cost_of;
      for (size_t u = 0; u < uniq.size(); ++u) {
        cost_of.emplace(*uniq[u].first, ucost[u]);
      }

      // Phase 4: deterministic sequential replay of the legacy scan order,
      // with the memoizer's counter semantics.
      std::set<std::vector<uint64_t>> seen;
      auto memo_cost = [&](const std::vector<uint64_t>& k) {
        if (seen.insert(k).second) {
          ++rep.evaluations;
        } else {
          ++rep.dedup_hits;
        }
        return cost_of.at(k);
      };
      rep.default_cost_us = memo_cost(default_key);
      double best = memo_cost(default_key);
      std::map<std::string, int64_t> best_assign;
      for (int i = 0; i < n; ++i) {
        ++rep.trials;
        const double c = memo_cost(keys[static_cast<size_t>(i)]);
        if (c < best) {
          best = c;
          best_assign = all[static_cast<size_t>(i)];
        }
      }
      rep.best = to_env(best_assign, default_threshold);
      rep.best_cost_us = best;
      trace_report(rep);
      return rep;
    }
  }

  WalkMemoizer memo{dev, p,  reg, datasets, default_threshold,
                    nullptr, {}, 0,   0};
  rep.default_cost_us = memo.cost({});
  std::map<std::string, int64_t> best_assign;
  double best = memo.cost({});
  for (const auto& a : all) {
    ++rep.trials;
    const double c = memo.cost(a);
    if (c < best) {
      best = c;
      best_assign = a;
    }
  }
  rep.best = to_env(best_assign, default_threshold);
  rep.best_cost_us = best;
  rep.evaluations = memo.evaluations;
  rep.dedup_hits = memo.dedup_hits;
  trace_report(rep);
  return rep;
}

}  // namespace incflat
