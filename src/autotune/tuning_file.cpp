#include "src/autotune/tuning_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/support/error.h"

namespace incflat {

std::string tuning_to_string(const ThresholdEnv& env) {
  std::ostringstream os;
  os << "# incremental-flattening threshold assignment\n";
  os << "default=" << env.default_threshold << "\n";
  for (const auto& [name, value] : env.values) {
    os << name << "=" << value << "\n";
  }
  return os.str();
}

namespace {

std::string trim(const std::string& s) {
  const size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

ThresholdEnv tuning_from_string(const std::string& text) {
  ThresholdEnv env;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // strip comments and whitespace-only lines
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw EvalError("tuning file: missing '=' on line " +
                      std::to_string(lineno));
    }
    // Keys and values are trimmed on both sides ("default = 16" assigns
    // the key "default", not "default "), and a value must be one whole
    // integer — stoll's silent acceptance of trailing garbage ("16abc")
    // previously stored 16.
    const std::string name = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (name.empty()) {
      throw EvalError("tuning file: empty key on line " +
                      std::to_string(lineno));
    }
    int64_t v = 0;
    try {
      size_t consumed = 0;
      v = std::stoll(value, &consumed);
      if (consumed != value.size()) {
        throw EvalError("trailing junk");
      }
    } catch (const std::exception&) {
      throw EvalError("tuning file: bad value on line " +
                      std::to_string(lineno) + ": '" + value + "'");
    }
    if (name == "default") {
      env.default_threshold = v;
    } else {
      env.values[name] = v;
    }
  }
  return env;
}

void save_tuning(const std::string& path, const ThresholdEnv& env) {
  // Atomic replace: write a sibling temp file, flush it, and rename it over
  // the destination.  A crash mid-save leaves either the old complete file
  // or a stray .tmp — never a truncated tuning file that would load as a
  // silently wrong assignment.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::out | std::ios::trunc);
    if (!f) throw IoError("cannot write tuning file: " + tmp);
    f << tuning_to_string(env);
    f.flush();
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      throw IoError("tuning file write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot replace tuning file: " + path);
  }
}

ThresholdEnv load_tuning(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot read tuning file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return tuning_from_string(buf.str());
}

}  // namespace incflat
