// Crash-safe autotuning journal.
//
// A tuning search interrupted by a crash (or a kill) should not lose the
// candidate measurements it already paid for.  The journal is an append-only
// text file: a header pinning the search configuration, then one line per
// *evaluation* (memoizer cache miss) in evaluation order, carrying the
// dedup-key hash and the exact bit pattern of the measured cost.  Appends
// are single flushed writes, so a crash can corrupt at most the final line
// — which the loader detects and drops (it simply gets re-measured).
//
// Resume replays the deterministic search: candidate generation re-runs
// from the seed, journaled evaluations are answered from the file (with the
// measurement RNG advanced by exactly the draws a live measurement would
// have used), and the search continues live from the first un-journaled
// evaluation.  The resumed TuningReport is bit-identical to an
// uninterrupted run's — pinned by tests/test_faults.cpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace incflat {

/// Search-configuration fingerprint stored in the journal header.  A resume
/// with any mismatching field is refused: replaying another search's
/// measurements would silently corrupt the report.
struct JournalMeta {
  std::string program;
  std::string device;
  uint64_t search_seed = 0;
  int max_trials = 0;
  uint64_t measure_seed = 0;
  int measure_k = 1;
  uint64_t noise_bits = 0;  // bit pattern of the noise amplitude

  bool operator==(const JournalMeta& o) const;
};

/// One journaled evaluation: the dedup-key hash (alignment check) and the
/// measured cost's exact IEEE-754 bit pattern (bit-identical round trip).
struct JournalEntry {
  uint64_t key_hash = 0;
  uint64_t cost_bits = 0;

  double cost() const {
    double d = 0;
    std::memcpy(&d, &cost_bits, sizeof d);
    return d;
  }
  static JournalEntry of(uint64_t key_hash, double cost) {
    JournalEntry e;
    e.key_hash = key_hash;
    std::memcpy(&e.cost_bits, &cost, sizeof cost);
    return e;
  }
};

/// FNV-1a over raw bytes: the journal's dedup-key hash.
uint64_t journal_hash(const void* data, size_t len);

class TuneJournal {
 public:
  /// Open `path` for appending.  resume=false truncates and writes a fresh
  /// header; resume=true requires an existing journal whose header matches
  /// `meta` (IoError otherwise) and fills `replay` with the recorded
  /// evaluations, dropping a crash-truncated final line.
  ///
  /// The file is opened O_APPEND and every line is issued as ONE write(2):
  /// POSIX makes O_APPEND writes atomic with respect to the file offset, so
  /// concurrent appenders (two tuner processes sharing a journal path, the
  /// daemon journaling from several workers) interleave only at line
  /// granularity — never mid-line.  A buffered stream cannot promise that:
  /// a line straddling the stream's buffer boundary flushes as two writes,
  /// and the gap is exactly where another process's line lands, tearing
  /// both.
  static TuneJournal open(const std::string& path, const JournalMeta& meta,
                          bool resume, std::vector<JournalEntry>* replay);

  TuneJournal() = default;
  TuneJournal(TuneJournal&& o) noexcept;
  TuneJournal& operator=(TuneJournal&& o) noexcept;
  ~TuneJournal();
  TuneJournal(const TuneJournal&) = delete;
  TuneJournal& operator=(const TuneJournal&) = delete;

  /// Append one evaluation: a single O_APPEND write.  Throws IoError when
  /// the write fails.
  void append(const JournalEntry& e);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;  // O_APPEND; -1 when default-constructed or moved-from
};

}  // namespace incflat
