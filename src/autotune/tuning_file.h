// Persistent threshold assignments.
//
// The Futhark toolchain stores autotuned thresholds in `.tuning` files —
// one `name=value` line per threshold — which the compiled program loads at
// start-up.  This module reproduces that workflow so tuned configurations
// survive across runs of the benchmark harness (and are human-editable).
#pragma once

#include <iosfwd>
#include <string>

#include "src/interp/interp.h"

namespace incflat {

/// Serialise an assignment in `.tuning` format (sorted by name).
std::string tuning_to_string(const ThresholdEnv& env);

/// Parse a `.tuning` document.  Ignores blank lines and '#' comments;
/// throws EvalError on malformed lines.
ThresholdEnv tuning_from_string(const std::string& text);

/// File convenience wrappers.
void save_tuning(const std::string& path, const ThresholdEnv& env);
ThresholdEnv load_tuning(const std::string& path);

}  // namespace incflat
