// Convenience facade tying the pipeline together: compile (flatten + plan) a
// source program once, then simulate its performance on a device profile
// and/or execute it for values via the reference interpreter.
#pragma once

#include <memory>

#include "src/flatten/flatten.h"
#include "src/gpusim/cost.h"
#include "src/interp/interp.h"
#include "src/plan/plan.h"

namespace incflat {

/// A flattened program bundled with its source, compilation mode and the
/// compile-once kernel plan (decision tree + priced kernel table) that
/// simulation and tuning evaluate instead of re-walking the IR.
struct Compiled {
  Program source;        // type-annotated source program
  FlattenResult flat;    // target program + threshold registry
  FlattenMode mode = FlattenMode::Incremental;
  std::shared_ptr<const KernelPlan> plan;  // built once by compile()
};

/// Flatten `src` (which must be type-annotated) under `mode` and lower the
/// result into a KernelPlan.
Compiled compile(const Program& src, FlattenMode mode);

/// Price one run of the compiled program on `dev` for dataset `sizes`, via
/// the kernel plan (bit-identical to the legacy estimate_run IR walk, which
/// remains available directly as the debug oracle).
RunEstimate simulate(const DeviceProfile& dev, const Compiled& c,
                     const SizeEnv& sizes,
                     const ThresholdEnv& thresholds = {});

/// Execute the compiled (target) program for actual values.  `dev` supplies
/// the workgroup limit consulted by intra-group guards.
Values execute(const DeviceProfile& dev, const Compiled& c,
               const SizeEnv& sizes, const ThresholdEnv& thresholds,
               const std::vector<Value>& inputs);

/// Execute the *source* program (reference semantics).
Values execute_source(const Compiled& c, const SizeEnv& sizes,
                      const std::vector<Value>& inputs);

/// One-line human-readable form of a run estimate.
std::string estimate_str(const RunEstimate& e);

}  // namespace incflat
