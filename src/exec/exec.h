// Convenience facade tying the pipeline together: compile (flatten + plan) a
// source program once, then simulate its performance on a device profile
// and/or execute it for values via the reference interpreter.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/range.h"
#include "src/flatten/flatten.h"
#include "src/gpusim/cost.h"
#include "src/interp/interp.h"
#include "src/plan/plan.h"

namespace incflat {

/// A flattened program bundled with its source, compilation mode and the
/// compile-once kernel plan (decision tree + priced kernel table) that
/// simulation and tuning evaluate instead of re-walking the IR.
struct Compiled {
  Program source;        // type-annotated source program
  FlattenResult flat;    // target program + threshold registry
  FlattenMode mode = FlattenMode::Incremental;
  std::shared_ptr<const KernelPlan> plan;  // built once by compile()
};

/// How to compile: flattening options plus (optionally) a custom pass
/// pipeline.  The default — empty `passes` — runs the canned pipeline
/// (src/pass/pass.h): fusion, normalize, <mode>, prune-segbinds, tiling,
/// plan-build.
struct CompileOptions {
  FlattenOptions flatten;
  /// Pass names (see pass_names()) to run instead of the canned pipeline.
  /// The name "transform" is an alias for the mode's transform pass.  If
  /// "plan-build" is omitted, Compiled::plan stays null and simulate()
  /// falls back to the legacy IR-walking estimator.
  std::vector<std::string> passes;
  /// Verify structural IR invariants after every pass (src/ir/verify.h).
  bool verify_each = false;
  /// Run simplify-guards (plus a prune-segbinds rerun) before plan-build:
  /// fold guards the size analysis proves constant under the program's
  /// declared size bounds and `limits`, deleting dead versions and their
  /// thresholds.  Off by default — the canned pipeline's output is then
  /// bit-identical to previous releases.  Ignored when `passes` is given
  /// explicitly (name the pass yourself).
  bool simplify = false;
  /// Device limits for simplify-guards (see analysis::limits_for).
  analysis::AnalysisLimits limits;
  /// Observer called with each pass's name and the program after it ran
  /// (e.g. incflatc --print-after).
  std::function<void(const std::string& pass, const Program& program)>
      after_pass;
};

/// Compile `src` (which must be type-annotated) under `mode`: run the pass
/// pipeline, producing the flattened program, its thresholds and the
/// KernelPlan.
Compiled compile(const Program& src, FlattenMode mode,
                 const CompileOptions& opts = {});

/// Price one run of the compiled program on `dev` for dataset `sizes`, via
/// the kernel plan (bit-identical to the legacy estimate_run IR walk, which
/// remains available directly as the debug oracle).
RunEstimate simulate(const DeviceProfile& dev, const Compiled& c,
                     const SizeEnv& sizes,
                     const ThresholdEnv& thresholds = {});

/// Execute the compiled (target) program for actual values.  `dev` supplies
/// the workgroup limit consulted by intra-group guards.
Values execute(const DeviceProfile& dev, const Compiled& c,
               const SizeEnv& sizes, const ThresholdEnv& thresholds,
               const std::vector<Value>& inputs);

/// Execute the *source* program (reference semantics).
Values execute_source(const Compiled& c, const SizeEnv& sizes,
                      const std::vector<Value>& inputs);

/// One-line human-readable form of a run estimate.
std::string estimate_str(const RunEstimate& e);

}  // namespace incflat
