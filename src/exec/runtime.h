// Fault-tolerant simulated runtime: retries, backoff, and graceful
// version-degradation over the guard tree.
//
// The paper's multi-versioned code — sibling code versions guarded by
// threshold predicates — doubles as a graceful-degradation mechanism: when
// the selected version cannot run (scratchpad allocation failure, repeated
// launch faults, a kernel overrunning its timeout), a *sibling* version of
// the same map nest still can.  run_with_faults executes a compiled
// program's launch schedule against a FaultPlan under a RunPolicy:
//
//   * transient faults (launch-failed, launch-timeout, device-lost) are
//     retried with capped exponential backoff;
//   * persistent faults (local-alloc-failed, retries exhausted, a kernel
//     that can never meet the per-kernel timeout) *degrade*: the innermost
//     taken guard on the failing kernel's tree path is forced off, falling
//     back intra-group -> outer-only sequentialised -> fully flattened, and
//     the run restarts under the degraded assignment;
//   * when no sibling survives (the fully flattened version itself faults
//     persistently) or the degradation budget is exhausted, the run returns
//     a structured Diagnostic instead of throwing raw.
//
// Every fault, retry and degradation is recorded in the RunOutcome report
// and in the exec.faults / exec.retries / exec.degradations trace counters.
// Degradation changes only *which* guarded version runs, never the values
// it computes (the paper's semantics-preservation property), so a degraded
// run is value-identical to the fault-free one — execute the outcome's
// effective thresholds to check against the interpreter oracle.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/exec/exec.h"
#include "src/gpusim/faults.h"
#include "src/support/diag.h"

namespace incflat {

/// Retry / timeout / degradation budgets for one run.
struct RunPolicy {
  /// Total attempts per launch (first try + retries).
  int max_attempts = 4;
  /// Backoff before retry k (1-based): backoff_us * 2^(k-1), capped.
  double backoff_us = 50.0;
  double backoff_cap_us = 5000.0;
  /// Per-kernel timeout in simulated microseconds; 0 disables.  A kernel
  /// whose fault-free time already exceeds it can never finish: that is a
  /// persistent fault (degrade immediately, no retries).
  double kernel_timeout_us = 0;
  /// Maximum guard degradations before the run is declared failed.
  int max_degradations = 16;
};

/// Parse a `--run-policy` SPEC: comma-separated `key=value` with keys
/// retries (extra attempts after the first), backoff, backoff-cap, timeout
/// (microseconds) and degradations.  Throws IoError on malformed specs.
RunPolicy parse_run_policy(const std::string& spec);

/// One-line canonical rendering of a policy.
std::string run_policy_str(const RunPolicy& policy);

/// One fault observed during a run, and what the executor did about it.
struct FaultEvent {
  int64_t launch = 0;     // FaultPlan consultation index
  std::string kernel;     // label of the faulting kernel
  FaultKind kind = FaultKind::None;
  int attempt = 0;        // 1-based attempt that faulted; 0 = policy timeout
  std::string action;     // "retry" | "degrade" | "abort"
  std::string threshold;  // guard forced off (action == "degrade")
};

/// Full report of one fault-injected run.
struct RunOutcome {
  bool ok = false;
  /// Fault-free estimate under the final (possibly degraded) thresholds.
  RunEstimate estimate;
  /// Total simulated wall time: estimate.time_us plus every failed attempt,
  /// backoff wait and abandoned partial run.
  double time_us = 0;
  double overhead_us = 0;  // time_us - estimate.time_us
  int faults = 0;
  int retries = 0;
  int degradations = 0;
  std::vector<FaultEvent> events;
  /// Thresholds forced off, in degradation order.
  std::vector<std::string> degraded;
  /// Effective assignment after degradation; running the interpreter under
  /// it yields values bit-identical to the fault-free run.
  ThresholdEnv thresholds;
  /// Set when !ok: why no surviving version could complete the run.
  std::optional<Diagnostic> error;
};

/// Execute the compiled program's launch schedule on `dev` against `faults`
/// under `policy`.  Never throws on injected faults — an unrecoverable run
/// reports ok=false with a structured Diagnostic.  The FaultPlan advances
/// monotonically across retries and restarts (one consultation per launch
/// attempt), so a given plan yields one deterministic outcome.
RunOutcome run_with_faults(const DeviceProfile& dev, const Compiled& c,
                           const SizeEnv& sizes,
                           const ThresholdEnv& thresholds, FaultPlan& faults,
                           const RunPolicy& policy = {});

/// Same, over a bare kernel plan (bench harness entry point; uses the
/// plan's embedded target program for the legacy-walker fallback).
RunOutcome run_with_faults(const DeviceProfile& dev, const KernelPlan& plan,
                           const SizeEnv& sizes,
                           const ThresholdEnv& thresholds, FaultPlan& faults,
                           const RunPolicy& policy = {});

/// One-line human-readable outcome summary.
std::string outcome_str(const RunOutcome& o);

}  // namespace incflat
