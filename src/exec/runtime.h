// Fault-tolerant simulated runtime: retries, backoff, and graceful
// version-degradation over the guard tree.
//
// The paper's multi-versioned code — sibling code versions guarded by
// threshold predicates — doubles as a graceful-degradation mechanism: when
// the selected version cannot run (scratchpad allocation failure, repeated
// launch faults, a kernel overrunning its timeout), a *sibling* version of
// the same map nest still can.  run_with_faults executes a compiled
// program's launch schedule against a FaultPlan under a RunPolicy:
//
//   * transient faults (launch-failed, launch-timeout, device-lost) are
//     retried with capped exponential backoff;
//   * persistent faults (local-alloc-failed, retries exhausted, a kernel
//     that can never meet the per-kernel timeout) *degrade*: the innermost
//     taken guard on the failing kernel's tree path is forced off, falling
//     back intra-group -> outer-only sequentialised -> fully flattened, and
//     the run restarts under the degraded assignment;
//   * when no sibling survives (the fully flattened version itself faults
//     persistently) or the degradation budget is exhausted, the run returns
//     a structured Diagnostic instead of throwing raw.
//
// Every fault, retry and degradation is recorded in the RunOutcome report
// and in the exec.faults / exec.retries / exec.degradations trace counters.
// Degradation changes only *which* guarded version runs, never the values
// it computes (the paper's semantics-preservation property), so a degraded
// run is value-identical to the fault-free one — execute the outcome's
// effective thresholds to check against the interpreter oracle.
// Tiered execution (TieredRuntime, at the bottom of this header) stacks a
// speculative tier on top: successful non-degraded runs feed an execution
// profile (src/profile/), stable guard streaks trigger specialization
// (src/plan/specialize.h), and subsequent runs whose shape guards pass
// replay the straight-line specialized schedule instead of descending the
// tree.  Any crack in the speculation — shape drift, a changed threshold
// assignment, a persistent fault mid-specialized-run, a fault degradation —
// *deoptimizes*: the specialized plan is invalidated, decision streaks are
// reset (re-specializing requires a fresh stability window), and the run
// restarts on the tree tier, which remains the sole authority for
// correctness.  Specialization off = bit-identical to the plain runtime.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/exec/exec.h"
#include "src/gpusim/faults.h"
#include "src/plan/specialize.h"
#include "src/support/diag.h"
#include "src/support/sync.h"

namespace incflat {

/// Cooperative end-to-end cancellation: an optional wall-clock deadline
/// plus an externally flippable flag, checked at safe points (between
/// kernel launches, between batch tickets, between tuner evaluations).
/// The serve layer mints one per request carrying a "deadline_ms" budget
/// and threads it client -> scheduler -> batch leader -> TieredRuntime, so
/// an expired request is answered "timeout" at the next check instead of
/// burning a worker to compute an answer nobody is waiting for.
///
/// Thread-safe: cancel() may race expired() from any thread.  The default
/// token never expires and costs one relaxed load per check.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  /// A token expiring `ms` from now (ms <= 0 = already expired).  Tokens
  /// are neither copyable nor movable (the flag is shared by address);
  /// share one via shared_ptr when several holders need it.
  explicit CancelToken(double deadline_ms) { set_deadline_ms(deadline_ms); }

  void set_deadline(Clock::time_point tp) { deadline_ = tp; }
  void set_deadline_ms(double ms) {
    deadline_ = Clock::now() + std::chrono::microseconds(
                                   static_cast<int64_t>(ms * 1000.0));
  }

  /// Flip the flag; every subsequent expired() answers true.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Deadline passed or cancel() called.
  bool expired() const {
    return cancel_requested() ||
           (deadline_ != Clock::time_point::max() &&
            Clock::now() >= deadline_);
  }

  /// Milliseconds left before the deadline; negative once expired, and a
  /// very large value when the token has no deadline (callers clamp).
  double remaining_ms() const {
    if (cancel_requested()) return -1;
    if (deadline_ == Clock::time_point::max()) return 1e18;
    return std::chrono::duration<double, std::milli>(deadline_ -
                                                     Clock::now())
        .count();
  }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// Retry / timeout / degradation budgets for one run.
struct RunPolicy {
  /// Total attempts per launch (first try + retries).
  int max_attempts = 4;
  /// Backoff before retry k (1-based): backoff_us * 2^(k-1), capped.
  double backoff_us = 50.0;
  double backoff_cap_us = 5000.0;
  /// Per-kernel timeout in simulated microseconds; 0 disables.  A kernel
  /// whose fault-free time already exceeds it can never finish: that is a
  /// persistent fault (degrade immediately, no retries).
  double kernel_timeout_us = 0;
  /// Maximum guard degradations before the run is declared failed.
  int max_degradations = 16;
  /// Optional cooperative cancellation: checked at pass start and
  /// periodically between launches.  An expired token aborts the run with
  /// ok=false, cancelled=true and a "deadline-exceeded" Diagnostic — no
  /// degradation, no speculation impact.  Not owned; the caller keeps the
  /// token alive for the duration of the run.  nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Parse a `--run-policy` SPEC: comma-separated `key=value` with keys
/// retries (extra attempts after the first), backoff, backoff-cap, timeout
/// (microseconds) and degradations.  Throws IoError on malformed specs.
RunPolicy parse_run_policy(const std::string& spec);

/// One-line canonical rendering of a policy.
std::string run_policy_str(const RunPolicy& policy);

/// One fault observed during a run, and what the executor did about it.
struct FaultEvent {
  int64_t launch = 0;     // FaultPlan consultation index
  std::string kernel;     // label of the faulting kernel
  FaultKind kind = FaultKind::None;
  int attempt = 0;        // 1-based attempt that faulted; 0 = policy timeout
  std::string action;     // "retry" | "degrade" | "abort"
  std::string threshold;  // guard forced off (action == "degrade")
};

/// Full report of one fault-injected run.
struct RunOutcome {
  bool ok = false;
  /// The run was abandoned because its CancelToken expired (deadline or
  /// explicit cancel) — a scheduling outcome, not an execution fault:
  /// cancelled runs carry a "deadline-exceeded" Diagnostic and never count
  /// against speculation (the tiered runtime keeps its specialized plan).
  bool cancelled = false;
  /// Fault-free estimate under the final (possibly degraded) thresholds.
  RunEstimate estimate;
  /// Total simulated wall time: estimate.time_us plus every failed attempt,
  /// backoff wait and abandoned partial run.
  double time_us = 0;
  double overhead_us = 0;  // time_us - estimate.time_us
  int faults = 0;
  int retries = 0;
  int degradations = 0;
  std::vector<FaultEvent> events;
  /// Thresholds forced off, in degradation order.
  std::vector<std::string> degraded;
  /// Effective assignment after degradation; running the interpreter under
  /// it yields values bit-identical to the fault-free run.
  ThresholdEnv thresholds;
  /// Set when !ok: why no surviving version could complete the run.
  std::optional<Diagnostic> error;
};

/// Execute the compiled program's launch schedule on `dev` against `faults`
/// under `policy`.  Never throws on injected faults — an unrecoverable run
/// reports ok=false with a structured Diagnostic.  The FaultPlan advances
/// monotonically across retries and restarts (one consultation per launch
/// attempt), so a given plan yields one deterministic outcome.
RunOutcome run_with_faults(const DeviceProfile& dev, const Compiled& c,
                           const SizeEnv& sizes,
                           const ThresholdEnv& thresholds, FaultPlan& faults,
                           const RunPolicy& policy = {});

/// Same, over a bare kernel plan (bench harness entry point; uses the
/// plan's embedded target program for the legacy-walker fallback).
RunOutcome run_with_faults(const DeviceProfile& dev, const KernelPlan& plan,
                           const SizeEnv& sizes,
                           const ThresholdEnv& thresholds, FaultPlan& faults,
                           const RunPolicy& policy = {});

/// One-line human-readable outcome summary.
std::string outcome_str(const RunOutcome& o);

// ---------------------------------------------------------------------------
// Tiered execution.

/// Knobs of the tiered runtime.
struct TierPolicy {
  /// Record guard decisions of successful, non-degraded tree runs.
  bool profile = true;
  /// Attempt specialization once a full stability window has been profiled
  /// (implies profiling is useful; with profile=false nothing ever
  /// stabilizes and the tree tier runs forever — the compatibility mode).
  bool specialize = true;
  /// Consecutive identical decisions every reachable guard needs before the
  /// plan may specialize — and, after a deoptimization, needs *again*
  /// (streaks reset on every deopt, damping specialize/deopt thrash).
  int64_t hot_runs = 8;
  /// Fault policy for both tiers.
  RunPolicy run;
};

/// Lifetime tallies of one TieredRuntime.
struct TierStats {
  int64_t tree_runs = 0;        // runs executed by tree descent
  int64_t spec_runs = 0;        // runs executed by the specialized schedule
  int64_t specializations = 0;  // specialized plans built
  int64_t deopts = 0;           // deoptimizations (any reason)
  int64_t invalidations = 0;    // specialized plans discarded
  std::string last_deopt;       // reason of the most recent deopt
};

/// One tiered run: the underlying outcome plus which tier produced it.
struct TieredOutcome {
  RunOutcome run;
  bool specialized = false;  // the specialized schedule ran to completion
  bool deopted = false;      // this run deoptimized (reason below)
  std::string deopt_reason;
};

/// Profile-guided two-tier executor for one plan on one device.  Not
/// thread-safe; holds a reference to the plan (caller keeps it alive).
/// "Not thread-safe" is *enforced*, not just documented: run() enters a
/// sync::ExclusiveRegion, so two threads racing into one runtime — the bug
/// shape the serve layer's batch-leader protocol exists to prevent — fail
/// loudly with std::logic_error instead of corrupting profile state.
class TieredRuntime {
 public:
  TieredRuntime(const DeviceProfile& dev, const KernelPlan& plan,
                TierPolicy policy = {});

  /// Execute one dataset.  Dispatches to the specialized schedule when one
  /// exists and covers (thresholds match, shape guards pass); otherwise —
  /// or after a mid-run deoptimization — runs the guard tree with full
  /// fault degradation.  Estimates are bit-identical across tiers.
  /// `cancel` (optional, not owned, must outlive the call) aborts
  /// cooperatively once expired: the outcome reports run.cancelled and the
  /// speculation state is left untouched — a missed deadline says nothing
  /// about the specialized plan's validity.
  TieredOutcome run(const SizeEnv& sizes, const ThresholdEnv& thresholds,
                    FaultPlan& faults, const CancelToken* cancel = nullptr);

  /// Adopt a persisted profile (validated against the plan; throws IoError
  /// on mismatch).  Returns false — keeping a fresh profile — when the
  /// profile was recorded on a different device, whose guard decisions
  /// (workgroup-fit in particular) do not transfer.
  bool seed_profile(profile::ExecProfile p);

  const profile::ExecProfile& prof() const { return prof_; }
  /// The live specialized plan, or nullptr while on the tree tier.
  const spesh::SpecializedPlan* specialized() const {
    return spec_ ? &*spec_ : nullptr;
  }
  const TierStats& stats() const { return stats_; }

  /// Human-readable tier/deopt report (incflatc --deopt-stats).
  std::string deopt_stats() const;

 private:
  const PlanDatasetCache& cache_for(const SizeEnv& sizes);
  void invalidate();
  void deopt(TieredOutcome& t, const std::string& why);
  bool thresholds_match(const ThresholdEnv& thresholds) const;
  /// Runs the specialized schedule; false = persistent fault (already
  /// deoptimized; partial-run accounting is left in *attempt for the tree
  /// rerun to absorb).
  struct SpecAttempt {
    double wasted_us = 0;
    int faults = 0;
    int retries = 0;
    std::vector<FaultEvent> events;
  };
  bool run_specialized(TieredOutcome& t, const ThresholdEnv& thresholds,
                       FaultPlan& faults, SpecAttempt* attempt);

  DeviceProfile dev_;
  const KernelPlan& plan_;
  TierPolicy policy_;
  profile::ExecProfile prof_;
  std::optional<spesh::SpecializedPlan> spec_;
  TierStats stats_;
  // Single-entry dataset cache: steady-state streams reuse one shape.
  std::optional<SizeEnv> cache_sizes_;
  std::unique_ptr<PlanDatasetCache> cache_;
  // Dispatch state for (spec_, cache_): verdict + precompiled schedule,
  // rebuilt only when the shape or the specialization changes.
  std::unique_ptr<spesh::SpecDispatch> dispatch_;
  // Detects concurrent run() entry (this class is single-threaded by
  // contract); zero cost beyond one atomic exchange per run.
  sync::ExclusiveRegion excl_{"TieredRuntime"};
};

}  // namespace incflat
