#include "src/exec/exec.h"

#include <sstream>

#include "src/support/str.h"
#include "src/support/trace.h"

namespace incflat {

namespace {

/// Kernel-launch / bytes-moved counters for one priced run (gpusim
/// estimates; bytes are the model's global+local traffic).
void trace_estimate(const RunEstimate& est) {
  if (!trace::enabled()) return;
  trace::count("exec.simulations");
  trace::count("exec.kernel_launches", est.kernel_launches);
  trace::count("exec.global_bytes", static_cast<int64_t>(est.total.gbytes));
  trace::count("exec.local_bytes", static_cast<int64_t>(est.total.lbytes));
}

}  // namespace

Compiled compile(const Program& src, FlattenMode mode) {
  trace::Span span("compile");
  Compiled c;
  c.source = src;
  c.flat = flatten(src, mode);
  c.mode = mode;
  c.plan = std::make_shared<const KernelPlan>(build_kernel_plan(c.flat.program));
  return c;
}

RunEstimate simulate(const DeviceProfile& dev, const Compiled& c,
                     const SizeEnv& sizes, const ThresholdEnv& thresholds) {
  trace::Span span("exec.simulate");
  RunEstimate est = c.plan ? plan_estimate_run(*c.plan, dev, sizes, thresholds)
                           : estimate_run(dev, c.flat.program, sizes,
                                          thresholds);
  trace_estimate(est);
  return est;
}

Values execute(const DeviceProfile& dev, const Compiled& c,
               const SizeEnv& sizes, const ThresholdEnv& thresholds,
               const std::vector<Value>& inputs) {
  trace::Span span("exec.execute");
  InterpCtx ctx;
  ctx.sizes = sizes;
  ctx.thresholds = thresholds;
  ctx.max_group_size = dev.max_group_size;
  return run_program(ctx, c.flat.program, inputs);
}

Values execute_source(const Compiled& c, const SizeEnv& sizes,
                      const std::vector<Value>& inputs) {
  InterpCtx ctx;
  ctx.sizes = sizes;
  return run_program(ctx, c.source, inputs);
}

std::string estimate_str(const RunEstimate& e) {
  std::ostringstream os;
  os << fmt_us(e.time_us) << " (" << e.kernel_launches << " launches, "
     << fmt_double(e.total.gbytes / 1e6, 2) << " MB global, "
     << fmt_double(e.total.flops / 1e6, 2) << " Mflop)";
  return os.str();
}

}  // namespace incflat
