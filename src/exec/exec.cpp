#include "src/exec/exec.h"

#include <sstream>
#include <utility>

#include "src/pass/pass.h"
#include "src/support/str.h"
#include "src/support/trace.h"

namespace incflat {

namespace {

/// Kernel-launch / bytes-moved counters for one priced run (gpusim
/// estimates; bytes are the model's global+local traffic).
void trace_estimate(const RunEstimate& est) {
  if (!trace::enabled()) return;
  trace::count("exec.simulations");
  trace::count("exec.kernel_launches", est.kernel_launches);
  trace::count("exec.global_bytes", static_cast<int64_t>(est.total.gbytes));
  trace::count("exec.local_bytes", static_cast<int64_t>(est.total.lbytes));
}

}  // namespace

Compiled compile(const Program& src, FlattenMode mode,
                 const CompileOptions& opts) {
  trace::Span span("compile");

  PassManager pm;
  if (opts.passes.empty()) {
    pm = compile_pipeline(mode, opts.simplify);
  } else {
    for (const auto& name : opts.passes) {
      pm.add(name == "transform" ? mode_name(mode) : name);
    }
  }

  PipelineState st;
  st.program = src;
  st.mode = mode;
  st.options = opts.flatten;
  st.limits = opts.limits;

  PassManagerOptions po;
  po.verify_each = opts.verify_each;
  if (opts.after_pass) {
    po.after_pass = [&opts](const Pass& p, const PipelineState& s) {
      opts.after_pass(p.name(), s.program);
    };
  }
  pm.run(st, po);

  Compiled c;
  c.source = src;
  c.mode = mode;
  c.flat = FlattenResult{std::move(st.program), std::move(st.thresholds)};
  c.plan = std::move(st.plan);
  return c;
}

RunEstimate simulate(const DeviceProfile& dev, const Compiled& c,
                     const SizeEnv& sizes, const ThresholdEnv& thresholds) {
  trace::Span span("exec.simulate");
  RunEstimate est = c.plan ? plan_estimate_run(*c.plan, dev, sizes, thresholds)
                           : estimate_run(dev, c.flat.program, sizes,
                                          thresholds);
  trace_estimate(est);
  return est;
}

Values execute(const DeviceProfile& dev, const Compiled& c,
               const SizeEnv& sizes, const ThresholdEnv& thresholds,
               const std::vector<Value>& inputs) {
  trace::Span span("exec.execute");
  InterpCtx ctx;
  ctx.sizes = sizes;
  ctx.thresholds = thresholds;
  ctx.max_group_size = dev.max_group_size;
  return run_program(ctx, c.flat.program, inputs);
}

Values execute_source(const Compiled& c, const SizeEnv& sizes,
                      const std::vector<Value>& inputs) {
  InterpCtx ctx;
  ctx.sizes = sizes;
  return run_program(ctx, c.source, inputs);
}

std::string estimate_str(const RunEstimate& e) {
  std::ostringstream os;
  os << fmt_us(e.time_us) << " (" << e.kernel_launches << " launches, "
     << fmt_double(e.total.gbytes / 1e6, 2) << " MB global, "
     << fmt_double(e.total.flops / 1e6, 2) << " Mflop)";
  return os.str();
}

}  // namespace incflat
