#include "src/exec/exec.h"

#include <sstream>

#include "src/support/str.h"

namespace incflat {

Compiled compile(const Program& src, FlattenMode mode) {
  Compiled c;
  c.source = src;
  c.flat = flatten(src, mode);
  c.mode = mode;
  c.plan = std::make_shared<const KernelPlan>(build_kernel_plan(c.flat.program));
  return c;
}

RunEstimate simulate(const DeviceProfile& dev, const Compiled& c,
                     const SizeEnv& sizes, const ThresholdEnv& thresholds) {
  if (c.plan) return plan_estimate_run(*c.plan, dev, sizes, thresholds);
  return estimate_run(dev, c.flat.program, sizes, thresholds);
}

Values execute(const DeviceProfile& dev, const Compiled& c,
               const SizeEnv& sizes, const ThresholdEnv& thresholds,
               const std::vector<Value>& inputs) {
  InterpCtx ctx;
  ctx.sizes = sizes;
  ctx.thresholds = thresholds;
  ctx.max_group_size = dev.max_group_size;
  return run_program(ctx, c.flat.program, inputs);
}

Values execute_source(const Compiled& c, const SizeEnv& sizes,
                      const std::vector<Value>& inputs) {
  InterpCtx ctx;
  ctx.sizes = sizes;
  return run_program(ctx, c.source, inputs);
}

std::string estimate_str(const RunEstimate& e) {
  std::ostringstream os;
  os << fmt_us(e.time_us) << " (" << e.kernel_launches << " launches, "
     << fmt_double(e.total.gbytes / 1e6, 2) << " MB global, "
     << fmt_double(e.total.flops / 1e6, 2) << " Mflop)";
  return os.str();
}

}  // namespace incflat
