#include "src/exec/runtime.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/support/error.h"
#include "src/support/str.h"
#include "src/support/trace.h"

namespace incflat {

namespace {

double parse_num(const std::string& key, const std::string& text) {
  try {
    size_t consumed = 0;
    const double v = std::stod(text, &consumed);
    if (consumed != text.size()) throw IoError("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw IoError("run-policy: bad value for '" + key + "': '" + text + "'");
  }
}

/// Simulated time one failed attempt burns before the fault is observed.
double attempt_cost(const DeviceProfile& dev, const RunPolicy& policy,
                    const LaunchInfo& li, FaultKind kind) {
  switch (kind) {
    case FaultKind::LaunchFailed:
      return dev.launch_overhead_us;  // the launch never started
    case FaultKind::LaunchTimeout:
      // Hung until the watchdog fired (or until it would have finished).
      return policy.kernel_timeout_us > 0 ? policy.kernel_timeout_us
                                          : li.time_us;
    case FaultKind::LocalAllocFailed:
      return dev.launch_overhead_us;  // rejected at allocation time
    case FaultKind::DeviceLost:
      return 10 * dev.launch_overhead_us;  // device reset round-trip
    case FaultKind::None:
      break;
  }
  return 0;
}

double backoff_for(const RunPolicy& policy, int retry_number) {
  double b = policy.backoff_us;
  for (int i = 1; i < retry_number; ++i) b = std::min(b * 2, policy.backoff_cap_us);
  return std::min(b, policy.backoff_cap_us);
}

/// The launch schedule the run executes under `env`: from the plan tree
/// when one is available, else one entry per priced kernel of the legacy
/// walker's estimate, each carrying the estimate's full guard list as its
/// path (the innermost taken guard is still a correct degradation target —
/// the legacy report cannot attribute guards to kernels more precisely).
std::vector<LaunchInfo> make_schedule(const DeviceProfile& dev,
                                      const KernelPlan* plan,
                                      const PlanDatasetCache* cache,
                                      const Program& target,
                                      const SizeEnv& sizes,
                                      const ThresholdEnv& env) {
  if (plan && cache && !plan->legacy_fallback) {
    return plan_launch_schedule(*plan, *cache, env);
  }
  const RunEstimate est = estimate_run(dev, target, sizes, env);
  std::vector<LaunchInfo> sched;
  sched.reserve(est.kernels.size());
  for (const KernelCost& k : est.kernels) {
    LaunchInfo li;
    li.what = k.what;
    li.time_us = k.time_us;
    li.guard_path = est.guards;
    sched.push_back(std::move(li));
  }
  return sched;
}

/// How many launches may pass between CancelToken checks.  Checking every
/// launch would put a clock read on the hot path; every 16th bounds the
/// overshoot past a deadline to a handful of simulated kernels.
constexpr int kCancelCheckStride = 16;

/// Fill `out` as a cancelled (deadline-exceeded) result.  Cancellation is a
/// scheduling outcome, not an execution fault: no degradation happened and
/// none is implied, so callers must not treat it as plan invalidation.
void mark_cancelled(RunOutcome& out, double wasted) {
  Diagnostic d;
  d.severity = Severity::Error;
  d.check = "deadline-exceeded";
  d.context = "run";
  d.message = "run abandoned: the request's deadline expired mid-execution";
  out.error = d;
  out.ok = false;
  out.cancelled = true;
  out.time_us = wasted;
  out.overhead_us = wasted;
  if (trace::enabled()) trace::count("exec.cancelled_runs");
}

RunOutcome run_impl(const DeviceProfile& dev, const KernelPlan* plan,
                    const Program& target, const SizeEnv& sizes,
                    const ThresholdEnv& thresholds, FaultPlan& faults,
                    const RunPolicy& policy) {
  trace::Span span("exec.run");
  RunOutcome out;
  out.thresholds = thresholds;

  std::unique_ptr<PlanDatasetCache> cache;
  if (plan && !plan->legacy_fallback) {
    cache = std::make_unique<PlanDatasetCache>(*plan, dev, sizes);
  }

  const auto final_estimate = [&]() {
    return plan && cache && !plan->legacy_fallback
               ? plan_estimate(*plan, *cache, out.thresholds)
               : estimate_run(dev, target, sizes, out.thresholds);
  };

  double wasted = 0;  // failed attempts, backoffs, abandoned partial runs

  const auto emit_counters = [&out] {
    if (!trace::enabled()) return;
    trace::count("exec.fault_runs");
    trace::count("exec.faults", out.faults);
    trace::count("exec.retries", out.retries);
    trace::count("exec.degradations", out.degradations);
  };

  const auto abort_run = [&](const LaunchInfo& li, FaultKind kind,
                             const std::string& why) {
    out.events.push_back(FaultEvent{faults.launches() - 1, li.what, kind, 0,
                                    "abort", ""});
    Diagnostic d;
    d.severity = Severity::Error;
    d.check = "fault-unrecoverable";
    d.context = "run";
    d.message = "kernel '" + li.what + "' failed persistently (" +
                fault_kind_name(kind) + ") and " + why;
    out.error = d;
    out.ok = false;
    out.estimate = final_estimate();
    out.time_us = wasted;
    out.overhead_us = wasted;
    emit_counters();
  };

  bool restart = true;
  int since_check = 0;
  while (restart) {
    restart = false;
    // Pass start is a natural cancellation point: a restart redoes the whole
    // schedule, the most expensive step an expired request could still take.
    if (policy.cancel && policy.cancel->expired()) {
      mark_cancelled(out, wasted);
      out.estimate = final_estimate();
      return out;
    }
    const std::vector<LaunchInfo> sched = make_schedule(
        dev, plan, cache.get(), target, sizes, out.thresholds);
    double completed = 0;  // progress of this pass, wasted if it restarts

    for (const LaunchInfo& li : sched) {
      if (policy.cancel && ++since_check >= kCancelCheckStride) {
        since_check = 0;
        if (policy.cancel->expired()) {
          mark_cancelled(out, wasted + completed);
          out.estimate = final_estimate();
          return out;
        }
      }
      // A kernel whose fault-free time already exceeds the per-kernel
      // timeout can never finish: persistent by policy, no launch consult.
      bool persistent = false;
      FaultKind kind = FaultKind::None;
      int attempt = 0;
      if (policy.kernel_timeout_us > 0 &&
          li.time_us > policy.kernel_timeout_us) {
        persistent = true;
        kind = FaultKind::LaunchTimeout;
        ++out.faults;
        wasted += policy.kernel_timeout_us;
      }
      while (!persistent) {
        ++attempt;
        kind = faults.next_launch();
        if (kind == FaultKind::None) break;  // the launch succeeded
        ++out.faults;
        wasted += attempt_cost(dev, policy, li, kind);
        if (kind == FaultKind::LocalAllocFailed ||
            attempt >= policy.max_attempts) {
          persistent = true;
          break;
        }
        ++out.retries;
        wasted += backoff_for(policy, attempt);
        out.events.push_back(FaultEvent{faults.launches() - 1, li.what, kind,
                                        attempt, "retry", ""});
      }
      if (!persistent) {
        completed += li.time_us;
        continue;
      }

      // Persistent fault: fall back to the next surviving guarded sibling
      // by forcing the innermost taken guard on this kernel's path off.
      wasted += completed;  // partial progress is thrown away
      const auto taken = std::find_if(
          li.guard_path.rbegin(), li.guard_path.rend(),
          [](const std::pair<std::string, bool>& g) { return g.second; });
      if (taken == li.guard_path.rend()) {
        abort_run(li, kind, "no surviving sibling version remains");
        return out;
      }
      if (out.degradations >= policy.max_degradations) {
        abort_run(li, kind, "the degradation budget is exhausted");
        return out;
      }
      out.thresholds.values[taken->first] = int64_t{1} << 62;
      ++out.degradations;
      out.degraded.push_back(taken->first);
      out.events.push_back(FaultEvent{faults.launches() - 1, li.what, kind,
                                      attempt, "degrade", taken->first});
      restart = true;
      break;
    }
  }

  out.ok = true;
  out.estimate = final_estimate();
  out.overhead_us = wasted;
  out.time_us = out.estimate.time_us + wasted;
  emit_counters();
  return out;
}

}  // namespace

RunPolicy parse_run_policy(const std::string& spec) {
  RunPolicy p;
  if (spec.empty() || spec == "default") return p;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw IoError("run-policy: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const double v = parse_num(key, item.substr(eq + 1));
    if (key == "retries") {
      if (v < 0 || v != static_cast<int>(v)) {
        throw IoError("run-policy: retries must be a non-negative integer");
      }
      p.max_attempts = 1 + static_cast<int>(v);
    } else if (key == "backoff") {
      if (v < 0) throw IoError("run-policy: backoff must be >= 0");
      p.backoff_us = v;
    } else if (key == "backoff-cap") {
      if (v < 0) throw IoError("run-policy: backoff-cap must be >= 0");
      p.backoff_cap_us = v;
    } else if (key == "timeout") {
      if (v < 0) throw IoError("run-policy: timeout must be >= 0");
      p.kernel_timeout_us = v;
    } else if (key == "degradations") {
      if (v < 0 || v != static_cast<int>(v)) {
        throw IoError(
            "run-policy: degradations must be a non-negative integer");
      }
      p.max_degradations = static_cast<int>(v);
    } else {
      throw IoError("run-policy: unknown key '" + key + "'");
    }
  }
  return p;
}

std::string run_policy_str(const RunPolicy& policy) {
  std::ostringstream os;
  os << "retries=" << (policy.max_attempts - 1)
     << ",backoff=" << fmt_double(policy.backoff_us, 1)
     << ",backoff-cap=" << fmt_double(policy.backoff_cap_us, 1)
     << ",timeout=" << fmt_double(policy.kernel_timeout_us, 1)
     << ",degradations=" << policy.max_degradations;
  return os.str();
}

RunOutcome run_with_faults(const DeviceProfile& dev, const Compiled& c,
                           const SizeEnv& sizes,
                           const ThresholdEnv& thresholds, FaultPlan& faults,
                           const RunPolicy& policy) {
  return run_impl(dev, c.plan.get(), c.flat.program, sizes, thresholds,
                  faults, policy);
}

RunOutcome run_with_faults(const DeviceProfile& dev, const KernelPlan& plan,
                           const SizeEnv& sizes,
                           const ThresholdEnv& thresholds, FaultPlan& faults,
                           const RunPolicy& policy) {
  return run_impl(dev, &plan, plan.program, sizes, thresholds, faults,
                  policy);
}

// ---------------------------------------------------------------------------
// Tiered execution.

TieredRuntime::TieredRuntime(const DeviceProfile& dev, const KernelPlan& plan,
                             TierPolicy policy)
    : dev_(dev),
      plan_(plan),
      policy_(policy),
      prof_(profile::make_profile(plan, plan.program.name, dev.name)) {}

bool TieredRuntime::seed_profile(profile::ExecProfile p) {
  profile::check_profile(p, plan_);
  if (p.device != dev_.name) return false;
  prof_ = std::move(p);
  return true;
}

const PlanDatasetCache& TieredRuntime::cache_for(const SizeEnv& sizes) {
  if (!cache_ || !cache_sizes_ || *cache_sizes_ != sizes) {
    cache_ = std::make_unique<PlanDatasetCache>(plan_, dev_, sizes);
    cache_sizes_ = sizes;
    dispatch_.reset();
  }
  return *cache_;
}

void TieredRuntime::invalidate() {
  dispatch_.reset();
  if (!spec_) return;
  spec_.reset();
  ++stats_.invalidations;
  trace::count("spesh.invalidations");
}

void TieredRuntime::deopt(TieredOutcome& t, const std::string& why) {
  t.deopted = true;
  t.deopt_reason = why;
  ++stats_.deopts;
  stats_.last_deopt = why;
  ++prof_.deopts;
  // Re-specializing requires a fresh stability window: stale streaks from
  // before the deopt must not immediately re-trigger the same speculation.
  profile::reset_streaks(prof_);
  invalidate();
  trace::count("exec.deopts");
}

bool TieredRuntime::thresholds_match(const ThresholdEnv& thresholds) const {
  for (const std::string& name : plan_.thresholds) {
    if (spec_->thresholds.get(name) != thresholds.get(name)) return false;
  }
  return true;
}

bool TieredRuntime::run_specialized(TieredOutcome& t,
                                    const ThresholdEnv& thresholds,
                                    FaultPlan& faults, SpecAttempt* attempt) {
  // The dispatch check already verified and precompiled this schedule.
  const std::vector<LaunchInfo>& sched = dispatch_->schedule();
  RunOutcome out;
  out.thresholds = thresholds;
  double wasted = 0;
  double completed = 0;
  int since_check = 0;
  for (const LaunchInfo& li : sched) {
    if (policy_.run.cancel && ++since_check >= kCancelCheckStride) {
      since_check = 0;
      if (policy_.run.cancel->expired()) {
        // Cancelled on the specialized tier: NOT a deopt — the plan is
        // still valid, the client just stopped waiting.
        mark_cancelled(out, wasted + completed);
        out.estimate = dispatch_->estimate();
        t.run = std::move(out);
        t.specialized = true;
        return true;
      }
    }
    bool persistent = false;
    FaultKind kind = FaultKind::None;
    int att = 0;
    if (policy_.run.kernel_timeout_us > 0 &&
        li.time_us > policy_.run.kernel_timeout_us) {
      persistent = true;
      kind = FaultKind::LaunchTimeout;
      ++out.faults;
      wasted += policy_.run.kernel_timeout_us;
    }
    while (!persistent) {
      ++att;
      kind = faults.next_launch();
      if (kind == FaultKind::None) break;
      ++out.faults;
      wasted += attempt_cost(dev_, policy_.run, li, kind);
      if (kind == FaultKind::LocalAllocFailed ||
          att >= policy_.run.max_attempts) {
        persistent = true;
        break;
      }
      ++out.retries;
      wasted += backoff_for(policy_.run, att);
      out.events.push_back(FaultEvent{faults.launches() - 1, li.what, kind,
                                      att, "retry", ""});
    }
    if (!persistent) {
      completed += li.time_us;
      continue;
    }
    // A persistent fault never degrades inside the specialized schedule —
    // degradation changes guard decisions, exactly what the specialization
    // froze.  Deoptimize: abandon the pass, let the tree tier (which owns
    // degradation) redo the run from scratch.
    wasted += completed;
    out.events.push_back(FaultEvent{faults.launches() - 1, li.what, kind, att,
                                    "deopt", ""});
    deopt(t, "persistent fault (" + std::string(fault_kind_name(kind)) +
                 ") in kernel '" + li.what + "' on the specialized tier");
    attempt->wasted_us = wasted;
    attempt->faults = out.faults;
    attempt->retries = out.retries;
    attempt->events = std::move(out.events);
    return false;
  }
  out.ok = true;
  out.estimate = dispatch_->estimate();
  out.overhead_us = wasted;
  out.time_us = out.estimate.time_us + wasted;
  if (trace::enabled()) {
    trace::count("exec.fault_runs");
    trace::count("exec.faults", out.faults);
    trace::count("exec.retries", out.retries);
  }
  t.run = std::move(out);
  t.specialized = true;
  return true;
}

TieredOutcome TieredRuntime::run(const SizeEnv& sizes,
                                 const ThresholdEnv& thresholds,
                                 FaultPlan& faults,
                                 const CancelToken* cancel) {
  const sync::ExclusiveRegion::Scope excl(excl_);
  // Safe to stash in the policy: ExclusiveRegion guarantees one run at a
  // time, and the token outlives the call by contract.
  policy_.run.cancel = cancel;
  TieredOutcome t;
  if (plan_.legacy_fallback) {
    t.run = run_with_faults(dev_, plan_, sizes, thresholds, faults,
                            policy_.run);
    ++stats_.tree_runs;
    return t;
  }

  SpecAttempt attempt;
  if (spec_) {
    std::string why;
    if (!thresholds_match(thresholds)) {
      why = "threshold assignment no longer matches the frozen one";
    } else {
      const PlanDatasetCache& cache = cache_for(sizes);
      if (!dispatch_) {
        dispatch_ = std::make_unique<spesh::SpecDispatch>(plan_, *spec_, cache);
      }
      if (!dispatch_->pass()) {
        const spesh::ShapeGuard* failed = dispatch_->failed();
        why = failed ? "shape guard failed: " + failed->expr.str() +
                           " not in " + failed->iv.str() + " [" + failed->why +
                           "]"
                     : "shape guard failed";
      }
    }
    if (why.empty()) {
      if (run_specialized(t, thresholds, faults, &attempt)) {
        ++stats_.spec_runs;
        trace::count("spesh.dispatches");
        return t;
      }
      // Fell through: deoptimized mid-run; `attempt` carries the debris.
    } else {
      deopt(t, why);
    }
  }

  RunOutcome out =
      run_with_faults(dev_, plan_, sizes, thresholds, faults, policy_.run);
  ++stats_.tree_runs;
  // The abandoned specialized pass is part of this run's cost and report.
  out.faults += attempt.faults;
  out.retries += attempt.retries;
  out.events.insert(out.events.begin(),
                    std::make_move_iterator(attempt.events.begin()),
                    std::make_move_iterator(attempt.events.end()));
  out.overhead_us += attempt.wasted_us;
  out.time_us += attempt.wasted_us;

  if (out.cancelled) {
    // Deadline expiry says nothing about the plan: keep the specialized
    // plan and the streaks, record nothing (a partial run has no complete
    // decision vector to feed the profile).
  } else if (!out.ok || out.degradations > 0) {
    // A degraded run executed different code versions than the nominal
    // assignment selects: its decisions must not feed speculation, and any
    // standing speculation is no longer trustworthy.
    invalidate();
    profile::reset_streaks(prof_);
  } else if (policy_.profile) {
    profile::record_run(prof_, plan_, cache_for(sizes), thresholds);
    if (policy_.specialize && !spec_) {
      spesh::SpecializeOptions so;
      so.hot_runs = policy_.hot_runs;
      spesh::SpecializeResult res =
          spesh::specialize_plan(plan_, prof_, thresholds, dev_, so);
      if (res.ok) {
        spec_ = std::move(res.plan);
        dispatch_.reset();
        ++stats_.specializations;
      }
    }
  }
  t.run = std::move(out);
  return t;
}

std::string TieredRuntime::deopt_stats() const {
  std::ostringstream os;
  os << "tiers: " << stats_.tree_runs << " tree run(s), " << stats_.spec_runs
     << " specialized, " << stats_.specializations << " specialization(s), "
     << stats_.deopts << " deopt(s), " << stats_.invalidations
     << " invalidation(s)";
  if (!stats_.last_deopt.empty()) {
    os << "\nlast deopt: " << stats_.last_deopt;
  }
  if (spec_) {
    os << "\n" << spec_->str();
  }
  os << "\n" << prof_.str();
  return os.str();
}

std::string outcome_str(const RunOutcome& o) {
  std::ostringstream os;
  if (o.ok) {
    os << "ok in " << fmt_us(o.time_us);
    if (o.overhead_us > 0) {
      os << " (" << fmt_us(o.overhead_us) << " fault overhead)";
    }
  } else {
    os << "FAILED after " << fmt_us(o.time_us) << ": "
       << (o.error ? o.error->message : "unknown error");
  }
  os << "; " << o.faults << " fault(s), " << o.retries << " retr"
     << (o.retries == 1 ? "y" : "ies") << ", " << o.degradations
     << " degradation(s)";
  if (!o.degraded.empty()) {
    os << " [";
    for (size_t i = 0; i < o.degraded.size(); ++i) {
      os << (i ? ", " : "") << o.degraded[i];
    }
    os << "]";
  }
  return os.str();
}

}  // namespace incflat
