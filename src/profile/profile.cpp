#include "src/profile/profile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "src/support/error.h"
#include "src/support/table.h"
#include "src/support/trace.h"

namespace incflat {
namespace profile {

bool GuardProfile::operator==(const GuardProfile& o) const {
  return threshold == o.threshold && taken == o.taken &&
         not_taken == o.not_taken && fit_fails == o.fit_fails &&
         par_seen == o.par_seen && (!par_seen || par_lo == o.par_lo) &&
         (!par_seen || par_hi == o.par_hi) && streak == o.streak &&
         streak_taken == o.streak_taken && last_fit_fail == o.last_fit_fail;
}

bool ExecProfile::operator==(const ExecProfile& o) const {
  return program == o.program && device == o.device && runs == o.runs &&
         deopts == o.deopts && guards == o.guards;
}

ExecProfile make_profile(const KernelPlan& plan, const std::string& program,
                         const std::string& device) {
  ExecProfile p;
  p.program = program;
  p.device = device;
  p.guards.reserve(plan.guards.size());
  for (const GuardInfo& g : plan.guards) {
    GuardProfile gp;
    gp.threshold = g.threshold;
    p.guards.push_back(std::move(gp));
  }
  return p;
}

void check_profile(const ExecProfile& p, const KernelPlan& plan) {
  if (p.guards.size() != plan.guards.size()) {
    throw IoError("profile: guard count mismatch (profile has " +
                  std::to_string(p.guards.size()) + ", plan has " +
                  std::to_string(plan.guards.size()) +
                  " — stale profile from another program?)");
  }
  for (size_t g = 0; g < plan.guards.size(); ++g) {
    if (p.guards[g].threshold != plan.guards[g].threshold) {
      throw IoError("profile: guard " + std::to_string(g) +
                    " names threshold '" + p.guards[g].threshold +
                    "', plan has '" + plan.guards[g].threshold + "'");
    }
  }
}

void record_run(ExecProfile& p, const KernelPlan& plan,
                const PlanDatasetCache& cache,
                const ThresholdEnv& thresholds) {
  INCFLAT_CHECK(!plan.legacy_fallback, "record_run on a legacy-fallback plan");
  check_profile(p, plan);
  // Structural descent mirroring plan_signature: Guard nodes record their
  // decision and descend the taken branch; DataCond evaluates (and hence
  // records) both arms, just like the estimate.
  const std::function<void(int)> walk = [&](int id) {
    const PlanNode& n = plan.nodes[static_cast<size_t>(id)];
    switch (n.kind) {
      case PlanNode::Kind::Block:
        for (const PlanNode::Step& s : n.steps) {
          if (!s.is_kernel) walk(s.index);
        }
        return;
      case PlanNode::Kind::Guard: {
        const GuardInfo& g = plan.guards[static_cast<size_t>(n.guard)];
        const bool taken =
            cache.guard_taken(n.guard, thresholds.get(g.threshold));
        const PlanDatasetCache::GuardObs obs = cache.guard_obs(n.guard);
        GuardProfile& gp = p.guards[static_cast<size_t>(n.guard)];
        if (taken) {
          ++gp.taken;
        } else {
          ++gp.not_taken;
          if (obs.fit_fail) ++gp.fit_fails;
          gp.last_fit_fail = obs.fit_fail;
        }
        // Par values are >= 1 when evaluated; 0 means the fit short-circuit
        // skipped the evaluation.
        if (obs.par >= 1) {
          gp.par_lo = gp.par_seen ? std::min(gp.par_lo, obs.par) : obs.par;
          gp.par_hi = gp.par_seen ? std::max(gp.par_hi, obs.par) : obs.par;
          gp.par_seen = true;
        }
        if (gp.streak > 0 && gp.streak_taken == taken) {
          ++gp.streak;
        } else {
          gp.streak = 1;
          gp.streak_taken = taken;
        }
        walk(taken ? n.then_node : n.else_node);
        return;
      }
      case PlanNode::Kind::DataCond:
        walk(n.then_node);
        walk(n.else_node);
        return;
      case PlanNode::Kind::Scale:
        walk(n.child);
        return;
    }
  };
  walk(plan.root);
  ++p.runs;
  trace::count("profile.runs_recorded");
}

void reset_streaks(ExecProfile& p) {
  for (GuardProfile& g : p.guards) {
    g.streak = 0;
    g.streak_taken = false;
  }
}

// ---------------------------------------------------------------------------
// JSON round trip.

namespace {

constexpr const char* kFormat = "incflat-profile";
constexpr int kVersion = 1;

int64_t get_int(const Json& j, const std::string& key) {
  const Json* v = j.find(key);
  if (!v || !v->is_number()) {
    throw IoError("profile: missing or non-numeric field '" + key + "'");
  }
  return static_cast<int64_t>(v->as_double());
}

bool get_bool(const Json& j, const std::string& key, bool dflt) {
  const Json* v = j.find(key);
  if (!v) return dflt;
  if (!v->is_bool()) {
    throw IoError("profile: field '" + key + "' is not a boolean");
  }
  return v->as_bool();
}

std::string get_str(const Json& j, const std::string& key) {
  const Json* v = j.find(key);
  if (!v || !v->is_string()) {
    throw IoError("profile: missing or non-string field '" + key + "'");
  }
  return v->as_string();
}

}  // namespace

Json ExecProfile::to_json() const {
  Json j = Json::object();
  j.set("format", kFormat)
      .set("version", kVersion)
      .set("program", program)
      .set("device", device)
      .set("runs", runs)
      .set("deopts", deopts);
  Json gs = Json::array();
  for (const GuardProfile& g : guards) {
    Json jg = Json::object();
    jg.set("threshold", g.threshold)
        .set("taken", g.taken)
        .set("not_taken", g.not_taken)
        .set("fit_fails", g.fit_fails)
        .set("streak", g.streak)
        .set("streak_taken", g.streak_taken)
        .set("last_fit_fail", g.last_fit_fail);
    if (g.par_seen) {
      jg.set("par_lo", g.par_lo).set("par_hi", g.par_hi);
    }
    gs.push(std::move(jg));
  }
  j.set("guards", std::move(gs));
  return j;
}

ExecProfile ExecProfile::from_json(const Json& j) {
  if (!j.is_object()) throw IoError("profile: document is not an object");
  if (get_str(j, "format") != kFormat) {
    throw IoError("profile: not an incflat profile (format '" +
                  get_str(j, "format") + "')");
  }
  if (get_int(j, "version") != kVersion) {
    throw IoError("profile: unsupported version " +
                  std::to_string(get_int(j, "version")));
  }
  ExecProfile p;
  p.program = get_str(j, "program");
  p.device = get_str(j, "device");
  p.runs = get_int(j, "runs");
  p.deopts = get_int(j, "deopts");
  const Json* gs = j.find("guards");
  if (!gs || !gs->is_array()) {
    throw IoError("profile: missing 'guards' array");
  }
  for (size_t i = 0; i < gs->size(); ++i) {
    const Json& jg = gs->at(i);
    GuardProfile g;
    g.threshold = get_str(jg, "threshold");
    g.taken = get_int(jg, "taken");
    g.not_taken = get_int(jg, "not_taken");
    g.fit_fails = get_int(jg, "fit_fails");
    g.streak = get_int(jg, "streak");
    g.streak_taken = get_bool(jg, "streak_taken", false);
    g.last_fit_fail = get_bool(jg, "last_fit_fail", false);
    if (const Json* lo = jg.find("par_lo")) {
      if (!lo->is_number() || !jg.find("par_hi") ||
          !jg.find("par_hi")->is_number()) {
        throw IoError("profile: guard " + std::to_string(i) +
                      ": par_lo/par_hi must be numbers");
      }
      g.par_seen = true;
      g.par_lo = static_cast<int64_t>(lo->as_double());
      g.par_hi = static_cast<int64_t>(jg.find("par_hi")->as_double());
      if (g.par_lo > g.par_hi) {
        throw IoError("profile: guard " + std::to_string(i) +
                      ": par_lo > par_hi");
      }
    }
    if (g.taken < 0 || g.not_taken < 0 || g.fit_fails < 0 || g.streak < 0) {
      throw IoError("profile: guard " + std::to_string(i) +
                    ": negative tally");
    }
    p.guards.push_back(std::move(g));
  }
  return p;
}

std::string ExecProfile::str() const {
  std::ostringstream os;
  os << "profile: " << program << " on " << device << ", " << runs
     << " run(s), " << deopts << " deopt(s)\n";
  Table t({"guard", "threshold", "taken", "not-taken", "fit-fails", "par",
           "streak"});
  for (size_t g = 0; g < guards.size(); ++g) {
    const GuardProfile& gp = guards[g];
    const std::string par =
        gp.par_seen ? (gp.par_lo == gp.par_hi
                           ? std::to_string(gp.par_lo)
                           : "[" + std::to_string(gp.par_lo) + ", " +
                                 std::to_string(gp.par_hi) + "]")
                    : "-";
    const std::string streak =
        gp.streak > 0
            ? std::to_string(gp.streak) + (gp.streak_taken ? "T" : "F")
            : "-";
    t.row({std::to_string(g), gp.threshold, std::to_string(gp.taken),
           std::to_string(gp.not_taken), std::to_string(gp.fit_fails), par,
           streak});
  }
  t.print(os);
  return os.str();
}

void save_profile(const std::string& path, const ExecProfile& p) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::out | std::ios::trunc);
    if (!f) throw IoError("cannot write profile file: " + tmp);
    f << p.to_json().str() << "\n";
    f.flush();
    if (!f) {
      f.close();
      std::remove(tmp.c_str());
      throw IoError("profile file write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot replace profile file: " + path);
  }
}

ExecProfile load_profile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot read profile file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  Json j;
  try {
    j = Json::parse(text);
  } catch (const JsonParseError& e) {
    throw IoError("profile file " + path + " (" +
                  json_error_position(text, e.offset()) + "): " + e.what());
  }
  try {
    return ExecProfile::from_json(j);
  } catch (const IoError& e) {
    throw IoError("profile file " + path + ": " + e.what());
  }
}

}  // namespace profile
}  // namespace incflat
