// Execution profiles: what the guard tree actually did at run time.
//
// The paper's multi-versioned binary descends its threshold guard tree on
// every run; incremental flattening fixes thresholds once at tune time and
// never adapts online.  This layer records, per plan guard, which branch
// was taken and which Par(e) values were observed across runs — the raw
// material of the speculative specializer (src/plan/specialize.h), which
// folds guards that decided the same way for a full stability window into
// constants, and of the profile-seeded autotuner (thresholds whose guards a
// workload never reaches are pruned from the search).
//
// Recording is explicit and off the hot path: the tiered runtime
// (src/exec/runtime.h) calls record_run only when profiling is enabled, so
// a profile-off run costs nothing (the trace-counter idiom).  Profiles
// persist as JSON — the strict Json::parse reader with line-numbered
// errors, atomic tmp+rename saves — matching the tuning-file/journal
// conventions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/plan/plan.h"
#include "src/support/json.h"

namespace incflat {
namespace profile {

/// Per-guard observation history.  Aligned by index with
/// KernelPlan::guards; `threshold` repeats the guard's parameter name so a
/// loaded profile can be validated against the plan it claims to describe.
struct GuardProfile {
  std::string threshold;
  int64_t taken = 0;      // runs in which the guard evaluated true
  int64_t not_taken = 0;  // runs in which it evaluated false
  int64_t fit_fails = 0;  // not-taken verdicts caused by the fit bound
  /// Observed Par(e) range across all runs that evaluated the guard; valid
  /// only when par_seen (fit-failure short-circuits can leave Par unknown).
  bool par_seen = false;
  int64_t par_lo = 0;
  int64_t par_hi = 0;
  /// Length of the current run of identical decisions, and that decision.
  /// The specializer folds a guard only when streak >= its hot-run window.
  int64_t streak = 0;
  bool streak_taken = false;
  /// Whether the most recent not-taken verdict came from the fit bound
  /// (decides which shape guard the specializer emits for the fold).
  bool last_fit_fail = false;

  bool reached() const { return taken + not_taken > 0; }
  bool operator==(const GuardProfile& o) const;
};

/// One program's execution profile on one device.
struct ExecProfile {
  std::string program;  // plan program name, for identification only
  std::string device;   // guard fit decisions are device-dependent
  int64_t runs = 0;     // tree-tier runs recorded
  int64_t deopts = 0;   // deoptimizations observed (shape drift, faults)
  std::vector<GuardProfile> guards;  // aligned with KernelPlan::guards

  bool operator==(const ExecProfile& o) const;

  Json to_json() const;
  static ExecProfile from_json(const Json& j);

  /// Human-readable per-guard table (incflatc --deopt-stats).
  std::string str() const;
};

/// Fresh, empty profile shaped for `plan`.
ExecProfile make_profile(const KernelPlan& plan, const std::string& program,
                         const std::string& device);

/// Throws IoError when `p` does not describe `plan` (guard count or
/// threshold-name mismatch — a stale file from another program/version).
void check_profile(const ExecProfile& p, const KernelPlan& plan);

/// Record one tree descent's guard decisions under `thresholds` into `p`:
/// taken/not-taken tallies, observed Par ranges and decision streaks.  The
/// descent mirrors plan_signature (data-dependent branches record both
/// arms, exactly the guards the estimate evaluates).  The cache must have
/// been built for `plan`, which must not be a legacy-fallback plan.
void record_run(ExecProfile& p, const KernelPlan& plan,
                const PlanDatasetCache& cache, const ThresholdEnv& thresholds);

/// Reset every guard's decision streak (keeps tallies and Par ranges): the
/// re-profiling window after a deoptimization or a fault degradation.
void reset_streaks(ExecProfile& p);

/// Atomic save (tmp + rename, like save_tuning): a crash mid-save leaves
/// the old complete file or a stray .tmp, never a torn profile.  Throws
/// IoError on failure.
void save_profile(const std::string& path, const ExecProfile& p);

/// Load a profile; throws IoError on missing files and on malformed JSON
/// (with the error's line and column) or schema violations.
ExecProfile load_profile(const std::string& path);

}  // namespace profile
}  // namespace incflat
