// Small string-building helpers shared across the pretty-printer, the cost
// reports, and the benchmark tables.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace incflat {

/// Join the string forms of a range with a separator.
template <typename Range, typename Fn>
std::string join_map(const Range& r, const std::string& sep, Fn&& fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& x : r) {
    if (!first) os << sep;
    first = false;
    os << fn(x);
  }
  return os.str();
}

/// Join a range of strings (or stream-printable values) with a separator.
template <typename Range>
std::string join(const Range& r, const std::string& sep) {
  return join_map(r, sep, [](const auto& x) {
    std::ostringstream os;
    os << x;
    return os.str();
  });
}

/// printf-free number formatting with fixed precision.
std::string fmt_double(double v, int precision = 2);

/// Human-readable engineering formatting of a microsecond duration.
std::string fmt_us(double us);

/// Repeat a string n times.
std::string repeat(const std::string& s, int n);

}  // namespace incflat
