// Minimal JSON writer and reader.
//
// The paper's artifact emits "raw measurement data in a simple JSON format";
// the benchmark binaries use the writer to do the same (results/*.json), and
// the trace layer (src/support/trace.*) emits Chrome trace-event files with
// it.  The reader is a strict little recursive-descent parser used to
// validate those artifacts round-trip (tests) and to load them back.
#pragma once

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace incflat {

/// Parse failure carrying the byte offset of the error, so callers that
/// still hold the source text can report line/column positions (see
/// json_error_position).  what() keeps the legacy "json parse error at
/// offset N: ..." message, so existing handlers are unaffected.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& msg, size_t offset)
      : std::runtime_error(msg), offset_(offset) {}
  size_t offset() const { return offset_; }

 private:
  size_t offset_;
};

/// 1-based "line N, column M" of a byte offset in `text` (clamped to the
/// end of the text), for human-readable parse diagnostics.
std::string json_error_position(const std::string& text, size_t offset);

/// A JSON value: null, bool, number, string, array, or object.  Objects
/// preserve insertion order (stable, diffable output).
class Json {
 public:
  Json() : node_(nullptr) {}
  Json(bool b) : node_(b) {}                                   // NOLINT
  Json(double d) : node_(d) {}                                 // NOLINT
  Json(int64_t i) : node_(static_cast<double>(i)) {}           // NOLINT
  Json(int i) : node_(static_cast<double>(i)) {}               // NOLINT
  Json(size_t i) : node_(static_cast<double>(i)) {}            // NOLINT
  Json(const char* s) : node_(std::string(s)) {}               // NOLINT
  Json(std::string s) : node_(std::move(s)) {}                 // NOLINT

  static Json array() {
    Json j;
    j.node_ = Arr{};
    return j;
  }
  static Json object() {
    Json j;
    j.node_ = Obj{};
    return j;
  }

  /// Parse a JSON document.  Throws std::runtime_error (with an offset)
  /// on malformed input or trailing garbage.
  static Json parse(const std::string& text);

  /// Append to an array value.
  Json& push(Json v);

  /// Set a key of an object value (inserting or overwriting).
  Json& set(const std::string& key, Json v);

  // -- readers ---------------------------------------------------------------

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(node_); }
  bool is_bool() const { return std::holds_alternative<bool>(node_); }
  bool is_number() const { return std::holds_alternative<double>(node_); }
  bool is_string() const { return std::holds_alternative<std::string>(node_); }
  bool is_array() const { return std::holds_alternative<Arr>(node_); }
  bool is_object() const { return std::holds_alternative<Obj>(node_); }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Element count of an array or object (0 for scalars).
  size_t size() const;

  /// Array element `i`; throws std::logic_error when out of range.
  const Json& at(size_t i) const;

  /// Object field lookup; null when absent / not an object.
  const Json* find(const std::string& key) const;

  /// Object field lookup; throws std::logic_error when absent.
  const Json& get(const std::string& key) const;

  /// Serialise; `indent` < 0 gives compact output.  Numbers use shortest
  /// round-trip formatting (parse(str()) reproduces every double exactly);
  /// non-finite doubles, which JSON cannot represent, serialise as null.
  std::string str(int indent = 2) const;

 private:
  struct Arr {
    std::vector<Json> items;
  };
  struct Obj {
    std::vector<std::pair<std::string, Json>> fields;
  };
  std::variant<std::nullptr_t, bool, double, std::string, Arr, Obj> node_;

  void write(std::ostringstream& os, int indent, int depth) const;
  static void write_string(std::ostringstream& os, const std::string& s);
  static void write_double(std::ostringstream& os, double d);
};

}  // namespace incflat
