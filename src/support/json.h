// Minimal JSON writer.
//
// The paper's artifact emits "raw measurement data in a simple JSON format";
// the benchmark binaries use this writer to do the same (results/*.json).
// Writing only — the tuning-file reader uses its own line format.
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace incflat {

/// A JSON value: null, bool, number, string, array, or object.  Objects
/// preserve insertion order (stable, diffable output).
class Json {
 public:
  Json() : node_(nullptr) {}
  Json(bool b) : node_(b) {}                                   // NOLINT
  Json(double d) : node_(d) {}                                 // NOLINT
  Json(int64_t i) : node_(static_cast<double>(i)) {}           // NOLINT
  Json(int i) : node_(static_cast<double>(i)) {}               // NOLINT
  Json(size_t i) : node_(static_cast<double>(i)) {}            // NOLINT
  Json(const char* s) : node_(std::string(s)) {}               // NOLINT
  Json(std::string s) : node_(std::move(s)) {}                 // NOLINT

  static Json array() {
    Json j;
    j.node_ = Arr{};
    return j;
  }
  static Json object() {
    Json j;
    j.node_ = Obj{};
    return j;
  }

  /// Append to an array value.
  Json& push(Json v);

  /// Set a key of an object value (inserting or overwriting).
  Json& set(const std::string& key, Json v);

  /// Serialise; `indent` < 0 gives compact output.
  std::string str(int indent = 2) const;

 private:
  struct Arr {
    std::vector<Json> items;
  };
  struct Obj {
    std::vector<std::pair<std::string, Json>> fields;
  };
  std::variant<std::nullptr_t, bool, double, std::string, Arr, Obj> node_;

  void write(std::ostringstream& os, int indent, int depth) const;
  static void write_string(std::ostringstream& os, const std::string& s);
};

}  // namespace incflat
