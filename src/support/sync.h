// Annotated synchronization primitives: the one sanctioned way to lock.
//
// Every mutex in the long-lived layers (src/serve/, src/support/pool|trace,
// src/exec/runtime) is one of the wrappers below, which buys two enforcing
// tiers on top of plain std::mutex:
//
//   * Clang Thread Safety Analysis: the wrappers carry capability
//     annotations, and the GUARDED_BY / REQUIRES / ACQUIRE / RELEASE macros
//     let data declare its lock and functions declare their locking
//     contract.  A clang build with -Wthread-safety (CMake option
//     INCFLAT_WTHREAD_SAFETY, CI job `thread-safety`) then *proves* the
//     contracts: an unlocked access to a GUARDED_BY member, a missed
//     REQUIRES, or an unbalanced acquire is a compile error.  Off clang the
//     macros expand to nothing — gcc builds are unaffected.
//
//   * lockdep, a runtime lock-order validator: every Mutex registers a
//     named *lock class* ("serve.entry", "pool.mu", ...), and when enabled
//     (sync::lockdep::set_enabled, INCFLAT_LOCKDEP=1, or the
//     INCFLAT_LOCKDEP CMake option) each thread keeps a held-lock stack and
//     the process grows a global acquisition-order graph.  Acquiring B
//     while holding A inserts the edge A->B; an insertion that would close
//     a cycle is an order inversion — a deadlock waiting for the right
//     interleaving — and is reported *at acquire time*, before any actual
//     deadlock, with both acquisition chains (the current thread's and the
//     historical chain that established the reverse path).  Violations are
//     rendered through the Diagnostic machinery and queryable for tests;
//     tools/soak_faults and the serve test suite certify their whole lock
//     hierarchy acyclic this way.
//
// Disabled-cost discipline (same rule as the trace layer): with lockdep off
// a Mutex::lock() is one relaxed atomic load on top of std::mutex::lock().
// Nothing in this header ever calls into the trace layer — trace's own
// internal mutex is a sync::Mutex, so per-acquisition trace counters would
// recurse; lockdep keeps its own tallies instead, published on demand as
// `sync.*` counters by lockdep::publish_trace_counters() (the daemon's
// stats op and soak_faults call it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/support/diag.h"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros.
//
// The canonical spellings from the clang documentation, guarded so that
// non-clang compilers (and clang without -Wthread-safety) see plain C++.
// Defined with #ifndef so a TU that already picked up compatible
// definitions (e.g. from a vendored header) does not redefine them.

#if defined(__clang__) && !defined(SWIG)
#define INCFLAT_TSA_ATTR(x) __attribute__((x))
#else
#define INCFLAT_TSA_ATTR(x)  // no-op off clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) INCFLAT_TSA_ATTR(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY INCFLAT_TSA_ATTR(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) INCFLAT_TSA_ATTR(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) INCFLAT_TSA_ATTR(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) INCFLAT_TSA_ATTR(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) INCFLAT_TSA_ATTR(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) INCFLAT_TSA_ATTR(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  INCFLAT_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) INCFLAT_TSA_ATTR(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  INCFLAT_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) INCFLAT_TSA_ATTR(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  INCFLAT_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) INCFLAT_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) INCFLAT_TSA_ATTR(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) INCFLAT_TSA_ATTR(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) INCFLAT_TSA_ATTR(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS INCFLAT_TSA_ATTR(no_thread_safety_analysis)
#endif

namespace incflat::sync {

namespace lockdep {

/// Globally enable/disable the lock-order validator.  Thread-safe; may be
/// flipped at any time (locks already held keep working — the held stack
/// tolerates pops of classes it never saw pushed).
void set_enabled(bool on);
bool enabled();

/// Enable iff the INCFLAT_LOCKDEP environment variable is set to anything
/// but "" or "0" (tool startup hook).  Returns the resulting enabled state.
bool enable_from_env();

/// Intern `name` as a lock class; returns its stable id.  Classes are
/// deduplicated by name: every PlanCache shard shares one class, every
/// ServedPlan entry shares one class — lock *order* is a property of the
/// code structure, not of individual mutex instances.
int register_class(const char* name);

/// Name of a registered class id.
std::string class_name(int id);

/// One detected order inversion: acquiring `acquire_class` while holding
/// `held_class`, when history already ordered them the other way around.
struct Violation {
  std::string held_class;     // held by this thread at detection time
  std::string acquire_class;  // the acquisition that would close the cycle
  /// This thread's acquisition chain, outermost first, ending with the
  /// offending class: what is held *now*.
  std::vector<std::string> current_chain;
  /// The historical chain that established the reverse ordering (the held
  /// stack snapshot recorded when the first edge of the reverse path was
  /// created), also ending with its acquired class.
  std::vector<std::string> prior_chain;

  /// Structured rendering ("lock-order-inversion" check, both chains in
  /// the message).
  Diagnostic to_diagnostic() const;
  std::string str() const;
};

/// Snapshot of everything recorded so far.
struct Stats {
  int64_t classes = 0;
  int64_t edges = 0;         // distinct ordered pairs observed
  int64_t acquisitions = 0;  // lock() calls validated while enabled
  int64_t violations = 0;
};
Stats stats();

/// All violations detected since the last reset(), in detection order.
/// Each inversion pair is recorded (and printed to stderr) only once.
std::vector<Violation> violations();

/// Drop the acquisition-order graph and the violation log (class
/// registrations are kept — ids must stay stable for live mutexes).
void reset();

/// Push the current Stats into the trace layer as sync.lock_classes /
/// sync.lock_edges / sync.lock_acquisitions / sync.lock_violations gauges
/// (no-op when tracing is disabled).  Called from stats endpoints, never
/// from the acquisition path.
void publish_trace_counters();

// Acquisition hooks, called by the wrappers below.  Public so that other
// blocking primitives could participate, but not meant for direct use.
// `before_acquire` validates + records edges against the caller's held
// stack *before* blocking; `push_held`/`pop_held` maintain the stack.
void before_acquire(int cls);
void push_held(int cls);
void pop_held(int cls);

}  // namespace lockdep

// ---------------------------------------------------------------------------
// Annotated primitives.

/// A std::mutex with a capability annotation and a named lockdep class.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` is the lock class (see lockdep::register_class); it must be a
  /// string literal.  Distinct mutexes guarding the same kind of state
  /// should share a name.
  explicit Mutex(const char* name = "mutex")
      : class_(lockdep::register_class(name)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    const bool dep = lockdep::enabled();
    if (dep) lockdep::before_acquire(class_);
    mu_.lock();
    if (dep) lockdep::push_held(class_);
  }
  void unlock() RELEASE() {
    mu_.unlock();
    if (lockdep::enabled()) lockdep::pop_held(class_);
  }
  /// Non-blocking, so it records no ordering edge (it cannot deadlock),
  /// but a successful try_lock still joins the held stack: later blocking
  /// acquisitions order themselves after it.
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (lockdep::enabled()) lockdep::push_held(class_);
    return true;
  }

  /// Statically tell the analysis this mutex is held (for call paths whose
  /// exclusivity the analysis cannot see).  Runtime no-op.
  void assert_held() const ASSERT_CAPABILITY(this) {}

  int lock_class() const { return class_; }

  /// The wrapped handle, for CondVar only (bypassing the wrapper anywhere
  /// else would silently skip both enforcement tiers).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
  int class_;
};

/// A std::shared_mutex with capability annotations; reader/writer methods
/// feed the same lockdep class (ordering is about blocking, and a writer
/// blocks behind readers and vice versa).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name = "shared_mutex")
      : class_(lockdep::register_class(name)) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    const bool dep = lockdep::enabled();
    if (dep) lockdep::before_acquire(class_);
    mu_.lock();
    if (dep) lockdep::push_held(class_);
  }
  void unlock() RELEASE() {
    mu_.unlock();
    if (lockdep::enabled()) lockdep::pop_held(class_);
  }
  void lock_shared() ACQUIRE_SHARED() {
    const bool dep = lockdep::enabled();
    if (dep) lockdep::before_acquire(class_);
    mu_.lock_shared();
    if (dep) lockdep::push_held(class_);
  }
  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
    if (lockdep::enabled()) lockdep::pop_held(class_);
  }

  int lock_class() const { return class_; }

 private:
  std::shared_mutex mu_;
  int class_;
};

/// RAII exclusive lock, std::lock_guard-shaped: no unlock before scope end.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock with mid-scope unlock()/lock(), std::unique_lock-
/// shaped; the worker-loop idiom (lock, pick work, unlock, execute, relock)
/// uses it so every exceptional exit still releases exactly once.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), owns_(true) {
    mu_.lock();
  }
  ~UniqueLock() RELEASE() {
    if (owns_) mu_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() RELEASE() {
    mu_.unlock();
    owns_ = false;
  }
  void lock() ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  bool owns_lock() const { return owns_; }
  Mutex& mutex() { return mu_; }

 private:
  Mutex& mu_;
  bool owns_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable for sync::Mutex.  Deliberately pred-less: callers
/// write the explicit `while (!cond) cv.wait(mu);` loop so the condition
/// reads its GUARDED_BY members inside a function that visibly holds the
/// mutex — a predicate lambda would be analyzed as a separate, lockless
/// function and defeat -Wthread-safety.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, wait, re-acquire.  The caller must hold `mu`
  /// (and still does when this returns); spurious wakeups are the caller's
  /// loop to absorb.  The lockdep held stack tracks the release and the
  /// re-acquisition, so ordering constraints created by re-locking under
  /// other held locks are observed.
  void wait(Mutex& mu) REQUIRES(mu);

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Loud misuse detector for single-threaded components (TieredRuntime and
/// friends): entering an ExclusiveRegion that is already occupied throws
/// std::logic_error instead of letting two threads corrupt unsynchronized
/// state.  One atomic exchange per entry — cheap enough to stay on in
/// release builds.
class ExclusiveRegion {
 public:
  /// `what` names the component in the failure message (string literal).
  explicit ExclusiveRegion(const char* what) : what_(what) {}
  ExclusiveRegion(const ExclusiveRegion&) = delete;
  ExclusiveRegion& operator=(const ExclusiveRegion&) = delete;

  class Scope {
   public:
    explicit Scope(ExclusiveRegion& r);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ExclusiveRegion& r_;
  };

 private:
  std::atomic<bool> busy_{false};
  const char* what_;
};

}  // namespace incflat::sync
