// Deterministic pseudo-random number generation.
//
// All stochastic components (autotuner search, dataset generators, property
// tests) draw from this splitmix64-based generator so that every run of the
// test suite and the benchmark harness is reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace incflat {

/// Small, fast, deterministic RNG (splitmix64). Not cryptographic; used for
/// reproducible workload generation and stochastic search.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.  Exactly
  /// uniform: the full-range case (span wraps to 0, where a naive modulo
  /// would divide by zero) returns a raw draw, and all other spans use
  /// rejection sampling to discard the biased tail of the 2^64 range (the
  /// rejection probability is span/2^64, negligible for the small spans
  /// used here, so determinism across platforms is preserved in practice
  /// and by the seeded tests).
  int64_t uniform_int(int64_t lo, int64_t hi) {
    const uint64_t span =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) return static_cast<int64_t>(next());
    const uint64_t tail = (0 - span) % span;  // 2^64 mod span
    uint64_t r = next();
    while (r < tail) r = next();
    return static_cast<int64_t>(static_cast<uint64_t>(lo) + r % span);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// Bernoulli trial with probability p of true.
  bool flip(double p = 0.5) { return uniform() < p; }

 private:
  uint64_t state_;
};

}  // namespace incflat
