#include "src/support/sync.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/support/trace.h"

namespace incflat::sync {

namespace lockdep {

namespace {

/// One observed ordering edge a->b, with the acquisition chain (held stack
/// plus b, outermost first) that first created it — the "prior chain" a
/// violation report shows for the reverse path.
struct Edge {
  std::vector<int> chain;
};

/// Global validator state.  Guarded by a *raw* std::mutex on purpose: this
/// is the bootstrap lock under every sync::Mutex, it participates in no
/// ordering (nothing is ever acquired while it is held), and annotating it
/// would recurse.  Leaked (never destroyed) so lock releases during static
/// destruction still find it alive.
struct State {
  std::mutex mu;
  std::vector<std::string> class_names;
  std::map<std::string, int> class_ids;
  // adjacency[a] = classes b with a recorded edge a->b.
  std::map<int, std::vector<int>> adjacency;
  std::map<std::pair<int, int>, Edge> edges;
  std::vector<Violation> violations;
  std::set<std::pair<int, int>> reported;  // one report per inversion pair
  int64_t acquisitions = 0;
};

State& state() {
  static State* s = new State;  // leaked: see struct comment
  return *s;
}

std::atomic<bool> g_enabled{
#ifdef INCFLAT_LOCKDEP_DEFAULT_ON
    true
#else
    false
#endif
};

/// The calling thread's held lock classes, outermost first.  Guarded-by
/// nothing: thread-local.  A plain vector<int> keeps thread exit cheap.
thread_local std::vector<int> t_held;

/// DFS: is `to` reachable from `from` over recorded edges?  On success,
/// `path` holds the class sequence from->...->to.  Called with state().mu
/// held; graphs are small (one node per lock class), so recursion depth and
/// cost are bounded by the class count.
bool find_path(State& s, int from, int to, std::set<int>& seen,
               std::vector<int>& path) {
  path.push_back(from);
  if (from == to) return true;
  seen.insert(from);
  auto it = s.adjacency.find(from);
  if (it != s.adjacency.end()) {
    for (int next : it->second) {
      if (seen.contains(next)) continue;
      if (find_path(s, next, to, seen, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

std::vector<std::string> names_of(const State& s, const std::vector<int>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(s.class_names[static_cast<size_t>(id)]);
  return out;
}

void record_violation(State& s, int held, int acquire,
                      const std::vector<int>& current_chain,
                      const std::vector<int>& prior_chain) {
  const auto pair = std::minmax(held, acquire);
  if (!s.reported.insert({pair.first, pair.second}).second) return;
  Violation v;
  v.held_class = s.class_names[static_cast<size_t>(held)];
  v.acquire_class = s.class_names[static_cast<size_t>(acquire)];
  v.current_chain = names_of(s, current_chain);
  v.prior_chain = names_of(s, prior_chain);
  std::cerr << v.to_diagnostic().str() << "\n";
  s.violations.push_back(std::move(v));
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool enable_from_env() {
  if (const char* env = std::getenv("INCFLAT_LOCKDEP")) {
    set_enabled(env[0] != '\0' && std::string(env) != "0");
  }
  return enabled();
}

int register_class(const char* name) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.class_ids.find(name);
  if (it != s.class_ids.end()) return it->second;
  const int id = static_cast<int>(s.class_names.size());
  s.class_names.emplace_back(name);
  s.class_ids.emplace(name, id);
  return id;
}

std::string class_name(int id) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (id < 0 || static_cast<size_t>(id) >= s.class_names.size()) return "?";
  return s.class_names[static_cast<size_t>(id)];
}

void before_acquire(int cls) {
  if (t_held.empty()) {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    ++s.acquisitions;
    return;
  }
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  ++s.acquisitions;
  std::vector<int> current_chain = t_held;
  current_chain.push_back(cls);
  for (int held : t_held) {
    if (held == cls) {
      // Same class twice on one stack: either a genuine recursive
      // acquisition (self-deadlock on std::mutex) or two instances of one
      // class nested — both violate the one-class-one-level discipline.
      record_violation(s, held, cls, current_chain, {cls, cls});
      continue;
    }
    const std::pair<int, int> key{held, cls};
    if (s.edges.contains(key)) continue;
    // New edge held->cls.  A cycle can only appear when a new edge closes
    // one, so check for an existing reverse path cls ~> held first.
    std::set<int> seen;
    std::vector<int> path;
    if (find_path(s, cls, held, seen, path)) {
      // The chain stored on the path's first edge is the historical
      // acquisition that ordered cls before (eventually) held.
      const Edge& first = s.edges.at({path[0], path[1]});
      record_violation(s, held, cls, current_chain, first.chain);
      continue;  // do not record the inverting edge: keep the graph acyclic
    }
    s.edges.emplace(key, Edge{current_chain});
    s.adjacency[held].push_back(cls);
  }
}

void push_held(int cls) { t_held.push_back(cls); }

void pop_held(int cls) {
  // Locks are usually released LIFO, but out-of-order release is legal for
  // std::mutex — remove the innermost matching entry.  Tolerates classes
  // never pushed (lockdep was enabled mid-critical-section).
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == cls) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

Stats stats() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  Stats st;
  st.classes = static_cast<int64_t>(s.class_names.size());
  st.edges = static_cast<int64_t>(s.edges.size());
  st.acquisitions = s.acquisitions;
  st.violations = static_cast<int64_t>(s.violations.size());
  return st;
}

std::vector<Violation> violations() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.violations;
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.adjacency.clear();
  s.edges.clear();
  s.violations.clear();
  s.reported.clear();
  s.acquisitions = 0;
}

void publish_trace_counters() {
  if (!trace::enabled()) return;
  const Stats st = stats();
  trace::gauge("sync.lock_classes", st.classes);
  trace::gauge("sync.lock_edges", st.edges);
  trace::gauge("sync.lock_acquisitions", st.acquisitions);
  trace::gauge("sync.lock_violations", st.violations);
}

namespace {

std::string chain_str(const std::vector<std::string>& chain) {
  std::ostringstream os;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i) os << " -> ";
    os << chain[i];
  }
  return os.str();
}

}  // namespace

Diagnostic Violation::to_diagnostic() const {
  Diagnostic d;
  d.severity = Severity::Error;
  d.check = "lock-order-inversion";
  d.context = "lockdep";
  d.message = "acquiring '" + acquire_class + "' while holding '" +
              held_class + "' inverts the established order; this thread: [" +
              chain_str(current_chain) + "], previously: [" +
              chain_str(prior_chain) + "]";
  return d;
}

std::string Violation::str() const { return to_diagnostic().str(); }

}  // namespace lockdep

void CondVar::wait(Mutex& mu) {
  const bool dep = lockdep::enabled();
  // The wait releases the mutex: drop it from the held stack so locks taken
  // by other code on this thread while we sleep (there is none today, but
  // the invariant should not depend on that) see a truthful stack.
  if (dep) lockdep::pop_held(mu.lock_class());
  std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
  cv_.wait(native);
  native.release();  // ownership returns to the caller's scope
  // Re-acquired while holding whatever else this thread holds: that is a
  // real ordering constraint, so run the full validation.
  if (lockdep::enabled()) {
    lockdep::before_acquire(mu.lock_class());
    lockdep::push_held(mu.lock_class());
  }
}

ExclusiveRegion::Scope::Scope(ExclusiveRegion& r) : r_(r) {
  if (r_.busy_.exchange(true, std::memory_order_acquire)) {
    throw std::logic_error(std::string(r_.what_) +
                           " is single-threaded: concurrent entry detected "
                           "(serialize callers or give each thread its own "
                           "instance)");
  }
}

ExclusiveRegion::Scope::~Scope() {
  r_.busy_.store(false, std::memory_order_release);
}

}  // namespace incflat::sync
