// Error handling utilities for the incremental-flattening compiler.
//
// Compiler passes signal malformed input or internal invariant violations via
// CompilerError; CHECK-style macros make the invariant sites terse without
// hiding the message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace incflat {

/// Thrown by compiler passes on malformed input programs (type errors,
/// ill-formed nests) and on violated internal invariants.
class CompilerError : public std::runtime_error {
 public:
  explicit CompilerError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Thrown by the interpreter/executor on runtime failures (shape mismatch,
/// out-of-bounds index, infeasible kernel configuration).
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Thrown on file-system failures: unreadable input files, failed atomic
/// writes, corrupt or mismatched tuning journals.  Derives from EvalError so
/// existing handlers of runtime failures keep working; the incflatc driver
/// maps it to its documented input-error exit code (3).
class IoError : public EvalError {
 public:
  explicit IoError(const std::string& msg) : EvalError(msg) {}
};

namespace detail {
[[noreturn]] inline void throw_compiler_error(const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw CompilerError(os.str());
}
}  // namespace detail

/// Abort the current pass with a CompilerError carrying source location.
#define INCFLAT_FAIL(msg) \
  ::incflat::detail::throw_compiler_error(__FILE__, __LINE__, (msg))

/// Internal invariant check; failure indicates a bug in a pass, not in the
/// user program.
#define INCFLAT_CHECK(cond, msg)  \
  do {                            \
    if (!(cond)) {                \
      INCFLAT_FAIL(std::string("internal invariant failed: ") + (msg)); \
    }                             \
  } while (0)

}  // namespace incflat
