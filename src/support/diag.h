// Structured compiler diagnostics, shared by the IR verifier
// (src/ir/verify.h) and the static-analysis linter (src/analysis/lint.h).
//
// A Diagnostic is one finding: a severity, a machine-readable check name, a
// pipeline context ("after pass 'tiling'", "lint"), an IR *path* locating
// the offending node (e.g. "body.if.else.segmap^1.body"), and a
// human-readable message.  Both `incflatc --lint` and `--verify-each`
// report lists of these — as text, one finding per line, or as a JSON
// array (`--lint-json` / `--json`).
#pragma once

#include <string>
#include <vector>

#include "src/support/json.h"

namespace incflat {

enum class Severity { Note, Warning, Error };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string check;    // machine name: "types", "dead-version", ...
  std::string context;  // pipeline position: "after pass 'tiling'", "lint"
  std::string path;     // IR path of the offending node ("" = whole program)
  std::string message;  // human-readable explanation

  /// One-line rendering: `error[dead-version] at body.if.then: message`.
  std::string str() const;

  Json to_json() const;
};

/// Text rendering, one diagnostic per line (trailing newline included when
/// the list is non-empty).
std::string diagnostics_str(const std::vector<Diagnostic>& ds);

/// JSON array of diagnostic objects.
Json diagnostics_json(const std::vector<Diagnostic>& ds);

/// Number of diagnostics with the given (or higher) severity.
int count_at_least(const std::vector<Diagnostic>& ds, Severity s);

}  // namespace incflat
