#include "src/support/trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <ostream>
#include <thread>

#include "src/support/error.h"
#include "src/support/json.h"
#include "src/support/str.h"
#include "src/support/sync.h"
#include "src/support/table.h"

namespace incflat::trace {

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  const char* name;
  const char* category;
  int tid;
  int64_t ts_us;
  int64_t dur_us;
};

int64_t clock_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct State {
  sync::Mutex mu{"trace.state"};
  // Base timestamp in raw clock microseconds.  Atomic because Span
  // construction reads it *without* the mutex (a disabled-path-cheap
  // design constraint) while reset() writes it — with a plain
  // time_point that pair is a data race under TSan.
  std::atomic<int64_t> epoch_us{clock_us()};
  std::vector<Event> events GUARDED_BY(mu);
  // Flushed span aggregates (flush_spans): per-name totals that survive
  // after their raw events were released, in first-recorded order.
  std::vector<SpanStat> flushed GUARDED_BY(mu);
  std::map<std::string, size_t> flushed_ix GUARDED_BY(mu);
  // Counters accumulate; gauges overwrite.  Insertion order is preserved
  // for stable summary/report output.
  std::vector<std::pair<std::string, int64_t>> counters GUARDED_BY(mu);
  std::map<std::string, size_t> counter_ix GUARDED_BY(mu);
  std::map<std::thread::id, int> tids GUARDED_BY(mu);

  int64_t now_us() const {
    return clock_us() - epoch_us.load(std::memory_order_relaxed);
  }

  int tid_of(std::thread::id id) REQUIRES(mu) {
    auto it = tids.find(id);
    if (it != tids.end()) return it->second;
    const int t = static_cast<int>(tids.size());
    tids.emplace(id, t);
    return t;
  }

  void bump(const std::string& name, int64_t delta, bool accumulate)
      REQUIRES(mu) {
    auto it = counter_ix.find(name);
    if (it == counter_ix.end()) {
      counter_ix.emplace(name, counters.size());
      counters.emplace_back(name, delta);
    } else if (accumulate) {
      counters[it->second].second += delta;
    } else {
      counters[it->second].second = delta;
    }
  }
};

std::atomic<bool> g_enabled{false};

State& state() {
  static State s;
  return s;
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void reset() {
  State& s = state();
  sync::MutexLock lk(s.mu);
  s.epoch_us.store(clock_us(), std::memory_order_relaxed);
  s.events.clear();
  s.flushed.clear();
  s.flushed_ix.clear();
  s.counters.clear();
  s.counter_ix.clear();
  s.tids.clear();
}

int64_t flush_spans() {
  State& s = state();
  sync::MutexLock lk(s.mu);
  const int64_t n = static_cast<int64_t>(s.events.size());
  for (const Event& e : s.events) {
    auto it = s.flushed_ix.find(e.name);
    if (it == s.flushed_ix.end()) {
      s.flushed_ix.emplace(e.name, s.flushed.size());
      s.flushed.push_back(SpanStat{e.name, 1, static_cast<double>(e.dur_us)});
    } else {
      s.flushed[it->second].calls += 1;
      s.flushed[it->second].total_us += static_cast<double>(e.dur_us);
    }
  }
  s.events.clear();
  s.events.shrink_to_fit();
  return n;
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category), start_us_(-1) {
  if (!enabled()) return;
  start_us_ = state().now_us();
}

Span::~Span() {
  if (start_us_ < 0 || !enabled()) return;
  State& s = state();
  const int64_t end = s.now_us();
  sync::MutexLock lk(s.mu);
  s.events.push_back(Event{name_, category_,
                           s.tid_of(std::this_thread::get_id()), start_us_,
                           end - start_us_});
}

void count(const std::string& name, int64_t delta) {
  if (!enabled()) return;
  State& s = state();
  sync::MutexLock lk(s.mu);
  s.bump(name, delta, /*accumulate=*/true);
}

void gauge(const std::string& name, int64_t value) {
  if (!enabled()) return;
  State& s = state();
  sync::MutexLock lk(s.mu);
  s.bump(name, value, /*accumulate=*/false);
}

std::vector<SpanStat> span_stats() {
  State& s = state();
  sync::MutexLock lk(s.mu);
  std::vector<SpanStat> out = s.flushed;
  std::map<std::string, size_t> ix;
  for (size_t i = 0; i < out.size(); ++i) ix.emplace(out[i].name, i);
  for (const Event& e : s.events) {
    auto it = ix.find(e.name);
    if (it == ix.end()) {
      ix.emplace(e.name, out.size());
      out.push_back(SpanStat{e.name, 1, static_cast<double>(e.dur_us)});
    } else {
      out[it->second].calls += 1;
      out[it->second].total_us += static_cast<double>(e.dur_us);
    }
  }
  return out;
}

std::map<std::string, int64_t> counters() {
  State& s = state();
  sync::MutexLock lk(s.mu);
  return {s.counters.begin(), s.counters.end()};
}

std::vector<std::string> counter_namespaces() {
  std::vector<std::string> out;
  for (const auto& [name, value] : counters()) {
    const std::string ns = name.substr(0, name.find('.'));
    if (out.empty() || out.back() != ns) out.push_back(ns);
  }
  return out;
}

std::string chrome_json() {
  State& s = state();
  sync::MutexLock lk(s.mu);
  Json events = Json::array();
  int64_t last_ts = 0;
  for (const Event& e : s.events) {
    events.push(Json::object()
                    .set("name", e.name)
                    .set("cat", e.category)
                    .set("ph", "X")
                    .set("pid", 1)
                    .set("tid", e.tid)
                    .set("ts", e.ts_us)
                    .set("dur", e.dur_us));
    last_ts = std::max(last_ts, e.ts_us + e.dur_us);
  }
  Json counter_obj = Json::object();
  for (const auto& [name, value] : s.counters) {
    counter_obj.set(name, value);
    events.push(Json::object()
                    .set("name", name)
                    .set("ph", "C")
                    .set("pid", 1)
                    .set("tid", 0)
                    .set("ts", last_ts)
                    .set("args", Json::object().set("value", value)));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events))
      .set("displayTimeUnit", "ms")
      .set("counters", std::move(counter_obj));
  return doc.str();
}

void write_chrome(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw EvalError("cannot write trace file: " + path);
  f << chrome_json() << "\n";
  if (!f) throw EvalError("cannot write trace file: " + path);
}

void print_summary(std::ostream& os) {
  const std::vector<SpanStat> spans = span_stats();
  State& s = state();
  std::vector<std::pair<std::string, int64_t>> counts;
  {
    sync::MutexLock lk(s.mu);
    counts = s.counters;
  }
  if (!spans.empty()) {
    os << "Pipeline phases:\n";
    Table t({"phase", "calls", "total", "mean"});
    for (const SpanStat& st : spans) {
      t.row({st.name, std::to_string(st.calls), fmt_us(st.total_us),
             fmt_us(st.total_us / static_cast<double>(st.calls))});
    }
    t.print(os);
  }
  if (!counts.empty()) {
    if (!spans.empty()) os << "\n";
    os << "Counters:\n";
    Table t({"counter", "value"});
    for (const auto& [name, value] : counts) {
      t.row({name, std::to_string(value)});
    }
    t.print(os);
    os << "namespaces:";
    for (const std::string& ns : counter_namespaces()) os << " " << ns;
    os << "\n";
  }
  if (spans.empty() && counts.empty()) {
    os << "trace: nothing recorded (tracing disabled?)\n";
  }
}

}  // namespace incflat::trace
