#include "src/support/table.h"

#include <algorithm>

#include "src/support/str.h"

namespace incflat {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      os << r[c] << std::string(width[c] - r[c].size(), ' ');
      os << (c + 1 == r.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& r : rows_) emit(r);
}

}  // namespace incflat
