// Pipeline observability: scoped spans and named counters.
//
// The compilation pipeline (normalize -> fuse -> flatten -> plan build ->
// tune -> exec) instruments itself with RAII `trace::Span`s and
// `trace::count`/`trace::gauge` calls.  Collection is globally disabled by
// default: a disabled span or counter is a single relaxed atomic load — no
// clock read, no lock — so instrumented hot paths cost nothing in normal
// runs (bench/bench_plan_vs_walk guards this).
//
// Two sinks:
//   * print_summary(os): per-phase wall-time table (aggregated by span
//     name) plus a counter table, rendered with src/support/table.*;
//   * chrome_json()/write_chrome(path): Chrome trace-event JSON — load the
//     file in chrome://tracing or https://ui.perfetto.dev.  Spans become
//     complete ("ph":"X") events with per-thread lanes; counters and gauges
//     ride along both as "ph":"C" counter events and as a top-level
//     "counters" object (extra top-level keys are ignored by the viewers).
//
// Surfaced by `incflatc --trace[=out.json] --stats` and, for the figure
// benches, by the INCFLAT_TRACE / INCFLAT_STATS environment variables
// (bench/harness.h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace incflat::trace {

/// Globally enable or disable collection.  Thread-safe.
void set_enabled(bool on);
bool enabled();

/// Drop every recorded span, counter and gauge (keeps the enabled flag).
/// Safe to call while other threads are constructing Spans: the time epoch
/// is atomic, so a concurrent span lands with a sane (if cross-epoch)
/// timestamp instead of racing.  A long-lived daemon calls this between
/// serving generations.
void reset();

/// Fold every buffered raw span event into persistent per-name aggregates
/// (visible through span_stats() / print_summary()) and release the event
/// storage; returns how many events were folded.  chrome_json() only shows
/// events recorded since the last flush — flushing trades replayable
/// timelines for bounded memory, which is the right trade for a daemon
/// whose stats endpoint calls this periodically over months of uptime.
int64_t flush_spans();

/// RAII scoped span: wall time between construction and destruction,
/// attributed to the calling thread.  `name` and `category` must be
/// string literals (they are stored by pointer, not copied).
class Span {
 public:
  explicit Span(const char* name, const char* category = "pipeline");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  int64_t start_us_;  // < 0: tracing was disabled at construction
};

/// Add `delta` to the named counter.  Thread-safe; no-op when disabled.
void count(const std::string& name, int64_t delta = 1);

/// Record an instantaneous value (last write wins) — e.g. arena sizes,
/// tree depths.  Thread-safe; no-op when disabled.
void gauge(const std::string& name, int64_t value);

/// Per-phase aggregate of every recorded span with this name.
struct SpanStat {
  std::string name;
  int64_t calls = 0;
  double total_us = 0;  // inclusive wall time
};

/// Aggregated span statistics in first-recorded order.
std::vector<SpanStat> span_stats();

/// Snapshot of all counters and gauges (gauges carry their last value).
std::map<std::string, int64_t> counters();

/// Sorted distinct `<namespace>.` prefixes of every recorded counter and
/// gauge — the layers that emitted telemetry this run (analysis, exec,
/// flatten, plan, pool, profile, spesh, tuner, ...).  Names without a dot
/// form their own namespace.
std::vector<std::string> counter_namespaces();

/// Chrome trace-event JSON for everything recorded so far.
std::string chrome_json();

/// Write chrome_json() to `path`; throws EvalError on I/O failure.
void write_chrome(const std::string& path);

/// Human-readable summary: span table then counter table.
void print_summary(std::ostream& os);

}  // namespace incflat::trace
