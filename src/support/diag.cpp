#include "src/support/diag.h"

#include <sstream>

namespace incflat {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << check << "]";
  if (!context.empty() && context != "lint") os << " " << context;
  if (!path.empty()) os << " at " << path;
  os << ": " << message;
  return os.str();
}

Json Diagnostic::to_json() const {
  return Json::object()
      .set("severity", severity_name(severity))
      .set("check", check)
      .set("context", context)
      .set("path", path)
      .set("message", message);
}

std::string diagnostics_str(const std::vector<Diagnostic>& ds) {
  std::string out;
  for (const auto& d : ds) {
    out += d.str();
    out += "\n";
  }
  return out;
}

Json diagnostics_json(const std::vector<Diagnostic>& ds) {
  Json arr = Json::array();
  for (const auto& d : ds) arr.push(d.to_json());
  return arr;
}

int count_at_least(const std::vector<Diagnostic>& ds, Severity s) {
  int n = 0;
  for (const auto& d : ds) {
    if (static_cast<int>(d.severity) >= static_cast<int>(s)) ++n;
  }
  return n;
}

}  // namespace incflat
