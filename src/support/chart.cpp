#include "src/support/chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace incflat {

void print_log_chart(std::ostream& os, const std::vector<ChartSeries>& series,
                     int x0, int height, const std::string& ylabel) {
  if (series.empty() || series[0].ys.empty()) return;
  const size_t n = series[0].ys.size();

  double lo = 1e300, hi = -1e300;
  for (const auto& s : series) {
    for (double y : s.ys) {
      if (y > 0) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
    }
  }
  if (hi <= lo) hi = lo * 10;
  const double llo = std::log10(lo), lhi = std::log10(hi);

  // grid[row][col]; row 0 is the top.
  const int width = static_cast<int>(n);
  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width) * 4, ' '));
  for (const auto& s : series) {
    for (size_t i = 0; i < s.ys.size() && i < n; ++i) {
      if (s.ys[i] <= 0) continue;
      const double frac = (std::log10(s.ys[i]) - llo) / (lhi - llo);
      int row = height - 1 -
                static_cast<int>(std::round(frac * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<size_t>(row)][i * 4 + 1] = s.glyph;
    }
  }

  for (int r = 0; r < height; ++r) {
    const double frac =
        static_cast<double>(height - 1 - r) / (height - 1);
    const double y = std::pow(10.0, llo + frac * (lhi - llo));
    os << std::setw(10) << std::setprecision(3) << std::scientific << y
       << " |" << grid[static_cast<size_t>(r)] << "\n";
  }
  os << std::setw(10) << ylabel << " +" << std::string(static_cast<size_t>(width) * 4, '-')
     << "\n" << std::setw(12) << ' ';
  for (int i = 0; i < width; ++i) {
    os << std::setw(3) << (x0 + i) << ' ';
  }
  os << "\n  legend: ";
  for (const auto& s : series) {
    os << s.glyph << "=" << s.name << "  ";
  }
  os << "\n" << std::defaultfloat;
}

}  // namespace incflat
