// A small std::thread worker pool for fanning independent work items.
//
// The autotuner uses it to warm per-dataset plan caches and to price
// exhaustive-search candidate batches concurrently.  Work items must be
// independent; determinism is preserved by keeping all result aggregation
// in the caller, in item order, after run() returns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace incflat {

/// Thrown by WorkerPool::run when more than one task failed: the message
/// aggregates every captured exception (a lone failure is rethrown as its
/// original type instead, preserving catch sites).
class WorkerPoolError : public std::runtime_error {
 public:
  WorkerPoolError(const std::string& msg, size_t failures)
      : std::runtime_error(msg), failures_(failures) {}
  size_t failures() const { return failures_; }

 private:
  size_t failures_;
};

class WorkerPool {
 public:
  /// `workers` <= 0 picks min(hardware_concurrency, 8); 1 runs inline.
  explicit WorkerPool(int workers = 0);

  /// The pool's worker-count rule, exposed for reuse (serve::JobScheduler)
  /// and regression testing: a positive request wins verbatim; otherwise
  /// min(hardware, 8) — where `hardware` is hardware_concurrency(), which
  /// the standard allows to return 0 ("not computable") and which is
  /// therefore clamped to >= 1 *before* the min pick, so the zero-CPU case
  /// degrades to inline execution instead of a nonsense width.
  static int pick_width(int requested, unsigned hardware);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run fn(0) .. fn(n-1) across the pool; the calling thread participates.
  /// Blocks until every started task finished.  Once any task throws, no
  /// further items are dispatched (in-flight ones still complete); a single
  /// captured exception is rethrown as-is, several are aggregated into one
  /// WorkerPoolError listing them all.  Not reentrant: calling run() from
  /// inside a task (or concurrently from another thread) fails loudly with
  /// std::logic_error instead of deadlocking.
  void run(int n, const std::function<void(int)>& fn);

  /// Total width including the calling thread.
  int width() const { return static_cast<int>(threads_.size()) + 1; }

 private:
  void worker_loop(int worker);
  void drain(std::unique_lock<std::mutex>& lk, int worker);

  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* fn_ = nullptr;
  int n_ = 0;
  int next_ = 0;
  int active_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
  bool running_ = false;  // a run() batch is in flight (reentrancy guard)
  std::vector<std::exception_ptr> errs_;
};

}  // namespace incflat
