// A small std::thread worker pool for fanning independent work items.
//
// The autotuner uses it to warm per-dataset plan caches and to price
// exhaustive-search candidate batches concurrently.  Work items must be
// independent; determinism is preserved by keeping all result aggregation
// in the caller, in item order, after run() returns.
//
// All shared state is guarded by the annotated sync layer
// (src/support/sync.h): a clang -Wthread-safety build proves the locking
// contracts, and lockdep validates the pool.mu -> trace.state acquisition
// order at runtime.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/support/sync.h"

namespace incflat {

/// Thrown by WorkerPool::run when more than one task failed: the message
/// aggregates every captured exception (a lone failure is rethrown as its
/// original type instead, preserving catch sites).
class WorkerPoolError : public std::runtime_error {
 public:
  WorkerPoolError(const std::string& msg, size_t failures)
      : std::runtime_error(msg), failures_(failures) {}
  size_t failures() const { return failures_; }

 private:
  size_t failures_;
};

class WorkerPool {
 public:
  /// `workers` <= 0 picks min(hardware_concurrency, 8); 1 runs inline.
  explicit WorkerPool(int workers = 0);

  /// The pool's worker-count rule, exposed for reuse (serve::JobScheduler)
  /// and regression testing: a positive request wins verbatim; otherwise
  /// min(hardware, 8) — where `hardware` is hardware_concurrency(), which
  /// the standard allows to return 0 ("not computable") and which is
  /// therefore clamped to >= 1 *before* the min pick, so the zero-CPU case
  /// degrades to inline execution instead of a nonsense width.
  static int pick_width(int requested, unsigned hardware);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run fn(0) .. fn(n-1) across the pool; the calling thread participates.
  /// Blocks until every started task finished.  Once any task throws, no
  /// further items are dispatched (in-flight ones still complete); a single
  /// captured exception is rethrown as-is, several are aggregated into one
  /// WorkerPoolError listing them all.  Not reentrant: calling run() from
  /// inside a task (or concurrently from another thread) fails loudly with
  /// std::logic_error instead of deadlocking.
  void run(int n, const std::function<void(int)>& fn) EXCLUDES(mu_);

  /// Total width including the calling thread.
  int width() const { return static_cast<int>(threads_.size()) + 1; }

 private:
  void worker_loop(int worker) EXCLUDES(mu_);
  /// Execute queued items until the batch is exhausted or failed; releases
  /// mu_ around each item and re-acquires it for the shared bookkeeping.
  void drain(int worker) REQUIRES(mu_);

  sync::Mutex mu_{"pool.mu"};
  sync::CondVar cv_start_, cv_done_;
  std::vector<std::thread> threads_;  // written in ctor, joined in dtor
  const std::function<void(int)>* fn_ GUARDED_BY(mu_) = nullptr;
  int n_ GUARDED_BY(mu_) = 0;
  int next_ GUARDED_BY(mu_) = 0;
  int active_ GUARDED_BY(mu_) = 0;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  // A run() batch is in flight (reentrancy guard).
  bool running_ GUARDED_BY(mu_) = false;
  std::vector<std::exception_ptr> errs_ GUARDED_BY(mu_);
};

}  // namespace incflat
