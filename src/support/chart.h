// ASCII line chart on a log-10 y-axis.
//
// The paper's artifact renders its figures as PDFs; the bench binaries here
// render the same series as terminal charts so the curve *shapes* (the
// reproduction contract) are visible directly in the harness output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace incflat {

/// One named series of y-values over a shared integer x-axis.
struct ChartSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> ys;
};

/// Render `series` (equal lengths) over x = x0, x0+1, ... with a log-10
/// y-axis of `height` rows.  Overlapping points print the later glyph.
void print_log_chart(std::ostream& os, const std::vector<ChartSeries>& series,
                     int x0 = 0, int height = 18,
                     const std::string& ylabel = "us");

}  // namespace incflat
