#include "src/support/pool.h"

#include <algorithm>
#include <sstream>

#include "src/support/trace.h"

namespace incflat {

int WorkerPool::pick_width(int requested, unsigned hardware) {
  if (requested > 0) return requested;
  // hardware_concurrency() may legitimately return 0 (the value is "not
  // computable"); clamp to >= 1 before the min pick so the width is always
  // at least the calling thread.  The clamp also guards the unsigned->int
  // cast against absurd platform values.
  const int hw = hardware == 0
                     ? 1
                     : static_cast<int>(std::min(hardware, 1024u));
  return std::min(hw, 8);
}

WorkerPool::WorkerPool(int workers) {
  const int n = pick_width(workers, std::thread::hardware_concurrency());
  threads_.reserve(static_cast<size_t>(std::max(n - 1, 0)));
  for (int i = 1; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    sync::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::drain(int worker) {
  int64_t done = 0;
  // A failed task stops the dispatch of *remaining* items (in-flight tasks
  // on other workers still complete); every captured exception is kept for
  // the caller's aggregate, not just the first.
  while (next_ < n_ && errs_.empty()) {
    const int ix = next_++;
    const std::function<void(int)>* fn = fn_;
    mu_.unlock();
    std::exception_ptr e;
    try {
      (*fn)(ix);
    } catch (...) {
      e = std::current_exception();
    }
    ++done;
    mu_.lock();
    if (e) {
      errs_.push_back(e);
      next_ = n_;  // cancel undispatched items for all workers
    }
  }
  // Per-worker utilization: how evenly run() batches spread over the pool.
  if (done > 0 && trace::enabled()) {
    trace::count("pool.tasks", done);
    trace::count("pool.worker" + std::to_string(worker) + ".tasks", done);
  }
}

void WorkerPool::worker_loop(int worker) {
  sync::MutexLock lk(mu_);
  uint64_t seen = 0;
  for (;;) {
    while (!stop_ && generation_ == seen) cv_start_.wait(mu_);
    if (stop_) return;
    seen = generation_;
    ++active_;
    drain(worker);
    --active_;
    if (active_ == 0 && next_ >= n_) cv_done_.notify_all();
  }
}

void WorkerPool::run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  trace::Span span("pool.run", "pool");
  sync::MutexLock lk(mu_);
  if (running_) {
    // Reentrant run() — from inside a task or concurrently from another
    // thread — would corrupt the batch state and deadlock; fail loudly.
    throw std::logic_error(
        "WorkerPool::run is not reentrant (called while a batch is active)");
  }
  running_ = true;
  fn_ = &fn;
  n_ = n;
  next_ = 0;
  errs_.clear();
  ++generation_;
  cv_start_.notify_all();
  drain(0);
  while (!(active_ == 0 && next_ >= n_)) cv_done_.wait(mu_);
  fn_ = nullptr;
  running_ = false;
  if (!errs_.empty()) {
    std::vector<std::exception_ptr> errs;
    errs.swap(errs_);
    if (errs.size() == 1) std::rethrow_exception(errs[0]);
    std::ostringstream os;
    os << "worker pool: " << errs.size() << " tasks failed:";
    for (const std::exception_ptr& e : errs) {
      try {
        std::rethrow_exception(e);
      } catch (const std::exception& ex) {
        os << "\n  " << ex.what();
      } catch (...) {
        os << "\n  <non-standard exception>";
      }
    }
    throw WorkerPoolError(os.str(), errs.size());
  }
}

}  // namespace incflat
