#include "src/support/str.h"

#include <cmath>
#include <iomanip>

namespace incflat {

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_us(double us) {
  if (!std::isfinite(us)) return "inf";
  if (us < 1e3) return fmt_double(us, 1) + "us";
  if (us < 1e6) return fmt_double(us / 1e3, 2) + "ms";
  return fmt_double(us / 1e6, 3) + "s";
}

std::string repeat(const std::string& s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

}  // namespace incflat
