#include "src/support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace incflat {

Json& Json::push(Json v) {
  if (!std::holds_alternative<Arr>(node_)) {
    throw std::logic_error("Json::push on non-array");
  }
  std::get<Arr>(node_).items.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (!std::holds_alternative<Obj>(node_)) {
    throw std::logic_error("Json::set on non-object");
  }
  auto& fields = std::get<Obj>(node_).fields;
  for (auto& [k, old] : fields) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  fields.emplace_back(key, std::move(v));
  return *this;
}

bool Json::as_bool() const {
  if (auto* b = std::get_if<bool>(&node_)) return *b;
  throw std::logic_error("Json::as_bool on non-bool");
}

double Json::as_double() const {
  if (auto* d = std::get_if<double>(&node_)) return *d;
  throw std::logic_error("Json::as_double on non-number");
}

const std::string& Json::as_string() const {
  if (auto* s = std::get_if<std::string>(&node_)) return *s;
  throw std::logic_error("Json::as_string on non-string");
}

size_t Json::size() const {
  if (auto* a = std::get_if<Arr>(&node_)) return a->items.size();
  if (auto* o = std::get_if<Obj>(&node_)) return o->fields.size();
  return 0;
}

const Json& Json::at(size_t i) const {
  auto* a = std::get_if<Arr>(&node_);
  if (!a || i >= a->items.size()) {
    throw std::logic_error("Json::at out of range");
  }
  return a->items[i];
}

const Json* Json::find(const std::string& key) const {
  auto* o = std::get_if<Obj>(&node_);
  if (!o) return nullptr;
  for (const auto& [k, v] : o->fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::get(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw std::logic_error("Json::get: no field '" + key + "'");
  return *v;
}

void Json::write_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void Json::write_double(std::ostringstream& os, double d) {
  if (!std::isfinite(d)) {
    // JSON has no NaN / Infinity literal.
    os << "null";
    return;
  }
  if (std::floor(d) == d && std::abs(d) < 1e15) {
    os << static_cast<int64_t>(d);
    return;
  }
  // Shortest representation that round-trips the exact double.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, res.ptr - buf);
}

void Json::write(std::ostringstream& os, int indent, int depth) const {
  const std::string nl = indent < 0 ? "" : "\n";
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent * (depth + 1)), ' ');
  const std::string pad_end =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent * depth), ' ');

  if (std::holds_alternative<std::nullptr_t>(node_)) {
    os << "null";
  } else if (auto* b = std::get_if<bool>(&node_)) {
    os << (*b ? "true" : "false");
  } else if (auto* d = std::get_if<double>(&node_)) {
    write_double(os, *d);
  } else if (auto* s = std::get_if<std::string>(&node_)) {
    write_string(os, *s);
  } else if (auto* a = std::get_if<Arr>(&node_)) {
    if (a->items.empty()) {
      os << "[]";
      return;
    }
    os << "[" << nl;
    for (size_t i = 0; i < a->items.size(); ++i) {
      os << pad;
      a->items[i].write(os, indent, depth + 1);
      if (i + 1 < a->items.size()) os << ",";
      os << nl;
    }
    os << pad_end << "]";
  } else if (auto* o = std::get_if<Obj>(&node_)) {
    if (o->fields.empty()) {
      os << "{}";
      return;
    }
    os << "{" << nl;
    for (size_t i = 0; i < o->fields.size(); ++i) {
      os << pad;
      write_string(os, o->fields[i].first);
      os << (indent < 0 ? ":" : ": ");
      o->fields[i].second.write(os, indent, depth + 1);
      if (i + 1 < o->fields.size()) os << ",";
      os << nl;
    }
    os << pad_end << "}";
  }
}

std::string Json::str(int indent) const {
  std::ostringstream os;
  write(os, indent, 0);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  const std::string& text;
  size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("json parse error at offset " +
                             std::to_string(pos) + ": " + what,
                         pos);
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume_lit(const char* lit) {
    size_t n = 0;
    while (lit[n]) ++n;
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int k = 0; k < 4; ++k) {
      if (pos >= text.size()) fail("truncated \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF && text.compare(pos, 2, "\\u") == 0) {
            // surrogate pair
            const size_t save = pos;
            pos += 2;
            const unsigned lo = hex4();
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              pos = save;
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  bool digit_at(size_t p) const {
    return p < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[p]));
  }

  double parse_number() {
    // Strict RFC 8259 grammar, validated *before* conversion.  from_chars
    // alone is too permissive for wire input: it accepts leading zeros
    // ("01"), bare fractions (".5", "1."), and C-library spellings like
    // "inf"/"nan" on some implementations — and a greedy
    // consume-then-convert loop turns adjacent garbage ("-+1", "1e") into
    // one vague "bad number".  The daemon feeds this parser bytes straight
    // off a socket, so each malformation gets a precise rejection.
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    // int = "0" / digit1-9 *DIGIT
    if (!digit_at(pos)) {
      pos = start;
      fail("bad number (expected digit)");
    }
    if (text[pos] == '0') {
      ++pos;
      if (digit_at(pos)) {
        pos = start;
        fail("bad number (leading zero)");
      }
    } else {
      while (digit_at(pos)) ++pos;
    }
    // frac = "." 1*DIGIT
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digit_at(pos)) {
        pos = start;
        fail("bad number (expected digit after '.')");
      }
      while (digit_at(pos)) ++pos;
    }
    // exp = ("e" / "E") ["-" / "+"] 1*DIGIT
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digit_at(pos)) {
        pos = start;
        fail("bad number (expected digit in exponent)");
      }
      while (digit_at(pos)) ++pos;
    }
    double v = 0;
    const auto res = std::from_chars(text.data() + start, text.data() + pos, v);
    if (res.ec == std::errc::result_out_of_range) {
      // from_chars leaves v unmodified on a range error, so re-read with
      // strtod to separate the two cases: "1e999" overflows to infinity —
      // which JSON cannot represent and the writer would silently turn back
      // into null, so reject it loudly — while "1e-999" underflows toward
      // zero, which strtod resolves to a denormal or 0.0 and we accept.
      const double sv = std::strtod(text.c_str() + start, nullptr);
      if (std::isfinite(sv)) return sv;
      pos = start;
      fail("number out of range");
    }
    if (res.ec != std::errc{} || res.ptr != text.data() + pos) {
      pos = start;
      fail("bad number");
    }
    return v;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json o = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return o;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        o.set(key, parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return o;
      }
    }
    if (c == '[') {
      ++pos;
      Json a = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return a;
      }
      for (;;) {
        a.push(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return a;
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_lit("true")) return Json(true);
    if (consume_lit("false")) return Json(false);
    if (consume_lit("null")) return Json();
    if (c == '+') fail("bad number (leading '+' is not allowed)");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return Json(parse_number());
    }
    fail("unexpected character");
  }
};

}  // namespace

Json Json::parse(const std::string& text) {
  Parser p{text};
  Json v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage after document");
  return v;
}

std::string json_error_position(const std::string& text, size_t offset) {
  if (offset > text.size()) offset = text.size();
  size_t line = 1;
  size_t col = 1;
  for (size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return "line " + std::to_string(line) + ", column " + std::to_string(col);
}

}  // namespace incflat
