#include "src/support/json.h"

#include <cmath>
#include <stdexcept>

namespace incflat {

Json& Json::push(Json v) {
  if (!std::holds_alternative<Arr>(node_)) {
    throw std::logic_error("Json::push on non-array");
  }
  std::get<Arr>(node_).items.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (!std::holds_alternative<Obj>(node_)) {
    throw std::logic_error("Json::set on non-object");
  }
  auto& fields = std::get<Obj>(node_).fields;
  for (auto& [k, old] : fields) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  fields.emplace_back(key, std::move(v));
  return *this;
}

void Json::write_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void Json::write(std::ostringstream& os, int indent, int depth) const {
  const std::string nl = indent < 0 ? "" : "\n";
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent * (depth + 1)), ' ');
  const std::string pad_end =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent * depth), ' ');

  if (std::holds_alternative<std::nullptr_t>(node_)) {
    os << "null";
  } else if (auto* b = std::get_if<bool>(&node_)) {
    os << (*b ? "true" : "false");
  } else if (auto* d = std::get_if<double>(&node_)) {
    if (std::floor(*d) == *d && std::abs(*d) < 1e15) {
      os << static_cast<int64_t>(*d);
    } else {
      os << *d;
    }
  } else if (auto* s = std::get_if<std::string>(&node_)) {
    write_string(os, *s);
  } else if (auto* a = std::get_if<Arr>(&node_)) {
    if (a->items.empty()) {
      os << "[]";
      return;
    }
    os << "[" << nl;
    for (size_t i = 0; i < a->items.size(); ++i) {
      os << pad;
      a->items[i].write(os, indent, depth + 1);
      if (i + 1 < a->items.size()) os << ",";
      os << nl;
    }
    os << pad_end << "]";
  } else if (auto* o = std::get_if<Obj>(&node_)) {
    if (o->fields.empty()) {
      os << "{}";
      return;
    }
    os << "{" << nl;
    for (size_t i = 0; i < o->fields.size(); ++i) {
      os << pad;
      write_string(os, o->fields[i].first);
      os << (indent < 0 ? ":" : ": ");
      o->fields[i].second.write(os, indent, depth + 1);
      if (i + 1 < o->fields.size()) os << ",";
      os << nl;
    }
    os << pad_end << "}";
  }
}

std::string Json::str(int indent) const {
  std::ostringstream os;
  write(os, indent, 0);
  return os.str();
}

}  // namespace incflat
