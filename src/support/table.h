// Aligned plain-text table printer used by the benchmark harness to emit the
// rows/series of the paper's tables and figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace incflat {

/// Accumulates rows of string cells and prints them column-aligned.
///
/// Example:
///   Table t({"benchmark", "dataset", "speedup"});
///   t.row({"Heston", "D1", "2.13"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one data row; short rows are padded with empty cells.
  void row(std::vector<std::string> cells);

  /// Number of data rows appended so far.
  size_t num_rows() const { return rows_.size(); }

  /// Print the table with a header rule, columns padded to content width.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace incflat
